//! The channel session: frame transmissions compiled onto the batched trace
//! engine.
//!
//! [`ChannelSession`] is the transmit engine behind [`crate::channel`].  For
//! every frame it *compiles* the whole transmission — the sender's
//! per-symbol store bursts, the receiver's initialisation loads, measured
//! sweeps and period waits, and any noisy-neighbour schedule — into
//! [`sim_core::session::TraceProgram`]s and executes them through
//! [`sim_core::machine::Machine::run_session`], the interleaved batched
//! executor.  The per-access actor stepping loop
//! ([`sim_core::machine::Machine::run`] over [`crate::sender::WbSender`] /
//! [`crate::receiver::WbReceiver`]) survives as the *reference backend*
//! ([`Backend::Stepped`]): the compiled path is required — and tested — to
//! produce bit-identical [`TransmissionReport`]s, it is just much faster,
//! because transmitting a frame no longer pays a virtual dispatch, a
//! `Completion` allocation and per-access perf bookkeeping for every one of
//! the frame's thousands of memory operations.
//!
//! ```text
//!   compile                 execute                      decode
//!   ───────►  TraceProgram  ───────►  latency samples  ────────►  bits
//!   sender     (per domain)  Machine::run_session        Decoder    +
//!   receiver                 (sched/tsc/noise applied)   align    score
//!   noise
//! ```

use crate::calibration::{calibrate_decoder_with_cycles, CalibrationConfig};
use crate::capacity::{rate_kbps, RatePoint};
use crate::channel::{ChannelConfig, EvaluationReport, TransmissionReport};
use crate::error::Error;
use crate::protocol::Decoder;
use crate::protocol::{align_and_score, Frame};
use crate::receiver::WbReceiver;
use crate::sender::WbSender;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim_cache::addr::CacheGeometry;
use sim_cache::trace::TraceSummary;
use sim_core::machine::Machine;
use sim_core::memlayout::{ChannelLayout, SetLines};
use sim_core::noise::NoisyNeighbor;
use sim_core::process::{AddressSpace, ProcessId};
use sim_core::program::Actor;
use sim_core::session::TraceProgram;
use sim_core::telemetry::{BitDecision, Phase, PhaseCycles, TraceEvent, TraceSink};

/// Domains of the two covert-channel parties and the optional noise process.
pub(crate) const RECEIVER_DOMAIN: u16 = 1;
pub(crate) const SENDER_DOMAIN: u16 = 2;
pub(crate) const NOISE_DOMAIN: u16 = 3;

/// The three parties of one frame, built identically by the compiled and
/// stepped backends (and by [`compile_frame`], which never executes).
struct FrameParties {
    sender: WbSender,
    receiver: WbReceiver,
    noise: Option<NoisyNeighbor>,
    /// The cycle budget `run_session` is given for this frame.
    limit: u64,
}

impl FrameParties {
    fn build(
        config: &ChannelConfig,
        geometry: CacheGeometry,
        frame: &Frame,
        seed: u64,
    ) -> FrameParties {
        let receiver_layout = ChannelLayout::build(
            AddressSpace::new(ProcessId(RECEIVER_DOMAIN)),
            geometry,
            config.target_set,
            geometry.associativity,
            config.replacement_size,
        );
        let sender_lines = SetLines::build(
            AddressSpace::new(ProcessId(SENDER_DOMAIN)),
            geometry,
            config.target_set,
            geometry.associativity,
            0,
        );

        let symbols = config.encoding.bits_to_symbols(frame.bits());
        let symbol_count = symbols.len();
        // Rendezvous time agreed by both parties: generously after the
        // receiver's initialisation phase (28 cold loads) has finished.
        let epoch = 50_000u64;
        let sender = WbSender::new(
            SENDER_DOMAIN,
            sender_lines,
            config.encoding.clone(),
            symbols,
            config.period_cycles,
        )
        .with_start_epoch(epoch);
        // A few extra samples so that losses at the end can still be seen.
        let max_samples = symbol_count + 4;
        let receiver = WbReceiver::with_default_phase(
            RECEIVER_DOMAIN,
            receiver_layout,
            config.period_cycles,
            max_samples,
            seed,
        )
        .with_start_epoch(epoch);

        let limit = epoch + (max_samples as u64 + 8) * config.period_cycles + 200_000;
        let noise = config.noise.map(|n| {
            NoisyNeighbor::new(
                AddressSpace::new(ProcessId(NOISE_DOMAIN)),
                geometry,
                config.target_set,
                n.lines,
                n.interval,
                n.store_fraction,
                NOISE_DOMAIN,
                seed ^ 0x6e6f,
            )
        });

        FrameParties {
            sender,
            receiver,
            noise,
            limit,
        }
    }
}

/// One frame's compiled trace programs and cycle budget — the output of
/// [`compile_frame`], produced without executing a single simulated cycle.
#[derive(Debug, Clone)]
pub struct CompiledFrame {
    /// Per-party programs in execution order: sender, receiver, then the
    /// noisy neighbour when the config has one.
    pub programs: Vec<TraceProgram>,
    /// The cycle budget `Machine::run_session` would be given.
    pub limit: u64,
}

/// Compiles the first frame of a `payload` transmission under `config`
/// exactly as [`ChannelSession::transmit_bits`] would — same per-frame seed
/// derivation, layouts, rendezvous epoch and cycle budget — but without
/// building a machine, calibrating, or executing anything.
///
/// This is the entry point of the `repro check` static gate: every program
/// can be handed to [`TraceProgram::verify`] before any simulation runs.
pub fn compile_frame(config: &ChannelConfig, payload: &[bool]) -> CompiledFrame {
    let frame = Frame::from_payload(payload);
    // The first transmission of a session: frames_sent == 1.
    let seed = config.seed.wrapping_mul(0x9e37_79b9).wrapping_add(1);
    let geometry = config.machine_config(seed).hierarchy.l1d.geometry;
    let parties = FrameParties::build(config, geometry, &frame, seed);
    let mut programs = vec![parties.sender.compile(), parties.receiver.compile()];
    if let Some(noise) = &parties.noise {
        programs.push(noise.compile(parties.limit));
    }
    CompiledFrame {
        programs,
        limit: parties.limit,
    }
}

/// Compiles one frame exactly as [`ChannelSession::transmit_frame_with`]
/// does on the compiled backend — same party construction and program order
/// — returning the programs and the cycle budget.  The lane transmit path
/// ([`crate::lanes::LaneChannelSession`]) uses this to compile every lane's
/// frame before one batched [`sim_core::lanes::LaneMachine::run_sessions`]
/// call executes them all.
pub(crate) fn compile_lane_frame(
    config: &ChannelConfig,
    frame: &Frame,
    seed: u64,
) -> (Vec<TraceProgram>, u64) {
    let geometry = config.machine_config(seed).hierarchy.l1d.geometry;
    let parties = FrameParties::build(config, geometry, frame, seed);
    let mut programs = vec![parties.sender.compile(), parties.receiver.compile()];
    if let Some(noise) = &parties.noise {
        programs.push(noise.compile(parties.limit));
    }
    (programs, parties.limit)
}

/// Which transmit engine executes a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Compile the frame into trace programs and run them through
    /// [`sim_core::machine::Machine::run_session`] — the default.
    Compiled,
    /// Step the [`WbSender`] / [`WbReceiver`] actors through
    /// [`sim_core::machine::Machine::run`] — the reference path the
    /// equivalence tests compare against.
    Stepped,
}

/// Cumulative simulated-work counters of a session, sourced from the
/// executed programs' [`TraceSummary`]s.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimUsage {
    /// Frames transmitted.
    pub frames: u64,
    /// Aggregate of every memory operation simulated across all frames
    /// (sender, receiver and noise domains combined).
    pub summary: TraceSummary,
    /// Per-protocol-phase attribution of the executed programs' step cycles
    /// (compiled backend; always maintained, independent of event tracing).
    pub phase_cycles: PhaseCycles,
}

impl SimUsage {
    /// Total simulated cycles attributed to memory operations.
    pub fn cycles(&self) -> u64 {
        self.summary.cycles
    }

    /// Total simulated demand accesses.
    pub fn accesses(&self) -> u64 {
        self.summary.accesses()
    }
}

/// The end-to-end WB covert-channel session: calibration, per-frame
/// compilation, execution and decoding.
#[derive(Debug)]
pub struct ChannelSession {
    config: ChannelConfig,
    decoder: Decoder,
    rng: StdRng,
    frames_sent: u64,
    sim: SimUsage,
    /// The transmit machine, reset (not reallocated) between frames.
    machine: Option<Machine>,
    /// Session-level telemetry sink; null (zero-overhead) unless
    /// [`ChannelSession::enable_tracing`] is called.
    sink: TraceSink,
    /// Simulated cycles the calibration consumed (the calibrate span).
    calibration_cycles: u64,
    /// The session timeline clock: cumulative simulated cycles of the
    /// calibration plus every transmitted frame, used to stitch per-frame
    /// machine timelines (each starting at cycle 0) into one monotone trace.
    clock: u64,
}

impl ChannelSession {
    /// Builds the session and calibrates the receiver's decision thresholds
    /// on a machine identical to the one the transmissions will use.
    ///
    /// # Errors
    ///
    /// Returns configuration or calibration errors.
    pub fn new(config: ChannelConfig) -> Result<ChannelSession, Error> {
        let calibration = CalibrationConfig {
            machine: config.machine_config(config.seed ^ 0xca11),
            target_set: config.target_set,
            replacement_size: config.replacement_size,
            samples_per_level: config.calibration_samples,
            seed: config.seed ^ 0xca11,
        };
        let (decoder, calibration_cycles) =
            calibrate_decoder_with_cycles(&calibration, &config.encoding)?;
        Ok(ChannelSession {
            rng: StdRng::seed_from_u64(config.seed ^ 0xc0de),
            decoder,
            config,
            frames_sent: 0,
            sim: SimUsage::default(),
            machine: None,
            sink: TraceSink::disabled(),
            calibration_cycles,
            clock: calibration_cycles,
        })
    }

    /// Turns on span/event telemetry for the rest of the session.
    ///
    /// The calibration that already ran is recorded retroactively as a
    /// `calibrate` span covering `[0, calibration_cycles)` of the session
    /// timeline; every subsequent frame appends a `frame` span containing the
    /// machine's per-phase spans (stitched onto the monotone session clock)
    /// and one [`BitDecision`] event per decoded latency sample.  Tracing
    /// never touches the machine's RNG, TSC or scheduler state, so a traced
    /// session produces bit-identical reports to an untraced one.
    pub fn enable_tracing(&mut self) {
        if self.sink.is_enabled() {
            return;
        }
        self.sink = TraceSink::active();
        self.sink.begin(0, "calibrate", Phase::Calibrate, 0);
        self.sink.end(0, "calibrate", self.calibration_cycles);
        if let Some(machine) = self.machine.as_mut() {
            machine.enable_tracing();
        }
    }

    /// Whether session telemetry is recording.
    pub fn tracing_enabled(&self) -> bool {
        self.sink.is_enabled()
    }

    /// The events recorded so far (empty when tracing is disabled).
    pub fn trace_events(&self) -> &[TraceEvent] {
        self.sink.events()
    }

    /// Drains the recorded events, leaving the sink recording.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.sink.take()
    }

    /// Simulated cycles the decoder calibration consumed.
    pub fn calibration_cycles(&self) -> u64 {
        self.calibration_cycles
    }

    /// The session configuration.
    pub fn config(&self) -> &ChannelConfig {
        &self.config
    }

    /// The calibrated decoder.
    pub fn decoder(&self) -> &Decoder {
        &self.decoder
    }

    /// Cumulative simulated-work counters over every frame transmitted so
    /// far (compiled backend only; the stepped reference backend reports the
    /// same transmissions but is not instrumented).
    pub fn sim_usage(&self) -> SimUsage {
        self.sim
    }

    /// Draws a random frame payload from the session's payload stream.
    pub(crate) fn random_frame(&mut self, bits: usize) -> Frame {
        Frame::random(bits, &mut self.rng)
    }

    /// Transmits an arbitrary payload (the 16-bit preamble is prepended).
    ///
    /// # Errors
    ///
    /// Returns machine-construction errors.
    pub fn transmit_bits(&mut self, payload: &[bool]) -> Result<TransmissionReport, Error> {
        let frame = Frame::from_payload(payload);
        self.transmit_frame(&frame)
    }

    /// Transmits one frame through the compiled backend.
    ///
    /// # Errors
    ///
    /// Returns machine-construction errors.
    pub fn transmit_frame(&mut self, frame: &Frame) -> Result<TransmissionReport, Error> {
        self.transmit_frame_with(frame, Backend::Compiled)
    }

    /// Transmits `frames` random frames of `bits_per_frame` bits each and
    /// aggregates the error statistics (one point of the paper's Figure 6).
    ///
    /// # Errors
    ///
    /// Returns machine-construction errors.
    pub fn evaluate(
        &mut self,
        frames: usize,
        bits_per_frame: usize,
    ) -> Result<EvaluationReport, Error> {
        let mut total_ber = 0.0;
        let mut max_ber: f64 = 0.0;
        for _ in 0..frames {
            let frame = self.random_frame(bits_per_frame);
            let report = self.transmit_frame(&frame)?;
            total_ber += report.bit_error_rate();
            max_ber = max_ber.max(report.bit_error_rate());
        }
        let mean = if frames == 0 {
            0.0
        } else {
            total_ber / frames as f64
        };
        let rate = rate_kbps(
            self.config.encoding.bits_per_symbol(),
            self.config.period_cycles,
            2.2,
        );
        Ok(EvaluationReport {
            frames,
            bits_per_frame,
            mean_bit_error_rate: mean,
            max_bit_error_rate: max_ber,
            rate_kbps: rate,
            rate_point: RatePoint {
                period_cycles: self.config.period_cycles,
                rate_kbps: rate,
                bit_error_rate: mean,
            },
        })
    }

    /// Transmits one frame through the chosen backend.
    ///
    /// Both backends draw the same per-frame seed from the session's frame
    /// counter, so transmitting the same frames in the same order through
    /// either backend produces identical reports.
    ///
    /// # Errors
    ///
    /// Returns machine-construction errors.
    pub fn transmit_frame_with(
        &mut self,
        frame: &Frame,
        backend: Backend,
    ) -> Result<TransmissionReport, Error> {
        self.frames_sent += 1;
        let seed = self
            .config
            .seed
            .wrapping_mul(0x9e37_79b9)
            .wrapping_add(self.frames_sent);
        // Each frame runs on a machine in the exact state `Machine::new`
        // would produce for the frame seed; across frames the arenas are
        // reused via `Machine::reset` instead of reallocated.
        let machine_config = self.config.machine_config(seed);
        let machine = match self.machine.as_mut() {
            Some(machine) => {
                machine.reset(machine_config)?;
                machine
            }
            None => self.machine.insert(Machine::new(machine_config)?),
        };
        if self.sink.is_enabled() && !machine.tracing_enabled() {
            machine.enable_tracing();
        }
        let geometry = machine.l1_geometry();
        let FrameParties {
            sender,
            receiver,
            noise,
            limit,
        } = FrameParties::build(&self.config, geometry, frame, seed);

        let latencies = match backend {
            Backend::Compiled => {
                // Compile every party; the program order (sender, receiver,
                // noise) mirrors the actor order of the stepped path, so the
                // machine's RNG stream is consumed identically.
                let mut programs = vec![sender.compile(), receiver.compile()];
                if let Some(noise) = &noise {
                    programs.push(noise.compile(limit));
                }
                let report = machine.run_session(&programs, &mut [], limit);
                self.sim.frames += 1;
                self.sim.summary.merge(&report.total_summary());
                self.sim.phase_cycles.merge(&report.phase_cycles());
                report.programs[1].latencies()
            }
            Backend::Stepped => {
                let mut sender = sender;
                let mut receiver = receiver;
                let mut noise = noise;
                let mut actors: Vec<&mut dyn Actor> = vec![&mut sender, &mut receiver];
                if let Some(noise) = noise.as_mut() {
                    actors.push(noise);
                }
                machine.run(&mut actors, limit);
                receiver.latencies()
            }
        };

        let decoded = self.decoder.bits(&latencies);
        let max_shift = 4 * self.config.encoding.bits_per_symbol();
        let alignment = align_and_score(frame.bits(), &decoded, max_shift);

        if self.sink.is_enabled() {
            let offset = self.clock;
            let frame_cycles = self.machine.as_ref().map_or(0, Machine::now);
            self.sink.begin(0, "frame", Phase::Other, offset);
            if let Some(machine) = self.machine.as_mut() {
                self.sink.absorb(machine.take_trace(), offset);
            }
            let threshold = self.decoder.binary_threshold();
            let end = offset + frame_cycles;
            for (index, &measured) in latencies.iter().enumerate() {
                self.sink.bit(
                    0,
                    BitDecision {
                        frame: self.frames_sent,
                        index,
                        measured,
                        threshold,
                        margin: threshold.map(|t| measured as f64 - t),
                        decoded: self.decoder.classify(measured) != 0,
                    },
                    end,
                );
            }
            self.sink.end(0, "frame", end);
            self.clock += frame_cycles;
        }

        Ok(TransmissionReport {
            sent_bits: frame.bits().to_vec(),
            received_bits: alignment.aligned_bits,
            latencies,
            alignment_offset: alignment.offset,
            edit_distance: alignment.edit_distance,
            breakdown: alignment.breakdown,
            bit_error_rate: alignment.bit_error_rate,
            rate_kbps: rate_kbps(
                self.config.encoding.bits_per_symbol(),
                self.config.period_cycles,
                2.2,
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::NoiseConfig;
    use crate::encoding::SymbolEncoding;
    use sim_core::sched::InterruptConfig;
    use sim_core::tsc::TscConfig;

    fn config(seed: u64) -> ChannelConfig {
        ChannelConfig::builder()
            .encoding(SymbolEncoding::binary(2).unwrap())
            .period_cycles(5_500)
            .calibration_samples(40)
            .seed(seed)
            .build()
            .unwrap()
    }

    /// The tentpole contract: the compiled transmit path is bit-identical to
    /// the stepped actor path, frame by frame, across noise models.
    #[test]
    fn compiled_and_stepped_backends_are_bit_identical() {
        let mut variants: Vec<ChannelConfig> = Vec::new();
        // Default realistic machine (interrupts + tsc noise).
        variants.push(config(7));
        // Idealised machine.
        let mut ideal = config(8);
        ideal.interrupts = InterruptConfig::none();
        ideal.tsc = TscConfig::ideal();
        variants.push(ideal);
        // Noisy neighbour present (adds the third program/actor).
        let mut noisy = config(9);
        noisy.noise = Some(NoiseConfig {
            interval: 1_500,
            lines: 2,
            store_fraction: 0.4,
        });
        variants.push(noisy);
        // Multi-bit encoding.
        let mut multibit = config(10);
        multibit.encoding = SymbolEncoding::paper_two_bit();
        variants.push(multibit);

        for config in variants {
            let label = format!("{config:?}");
            let payload: Vec<bool> = (0..48).map(|i| (i * 5) % 3 == 0).collect();
            let mut compiled = ChannelSession::new(config.clone()).unwrap();
            let mut stepped = ChannelSession::new(config).unwrap();
            for _ in 0..2 {
                let frame = Frame::from_payload(&payload);
                let a = compiled
                    .transmit_frame_with(&frame, Backend::Compiled)
                    .unwrap();
                let b = stepped
                    .transmit_frame_with(&frame, Backend::Stepped)
                    .unwrap();
                assert_eq!(a, b, "backends diverged for {label}");
            }
        }
    }

    /// `compile_frame` must mirror the first transmission of a fresh session
    /// (same seed derivation and party construction) and verify clean.
    #[test]
    fn compile_frame_is_deterministic_verified_and_complete() {
        let payload: Vec<bool> = (0..32).map(|i| i % 3 == 0).collect();

        let base = config(5);
        let compiled = compile_frame(&base, &payload);
        assert_eq!(compiled.programs.len(), 2, "sender + receiver");
        assert_eq!(compiled.programs[0].name(), "wb-sender");
        assert_eq!(compiled.programs[1].name(), "wb-receiver");
        assert!(compiled.limit > 50_000);
        for program in &compiled.programs {
            assert_eq!(program.verify(), Vec::new(), "{}", program.name());
            assert!(program.action_count() > 1);
        }
        let again = compile_frame(&base, &payload);
        assert_eq!(again.programs, compiled.programs);
        assert_eq!(again.limit, compiled.limit);

        let mut noisy = config(5);
        noisy.noise = Some(NoiseConfig {
            interval: 1_500,
            lines: 2,
            store_fraction: 0.4,
        });
        let with_noise = compile_frame(&noisy, &payload);
        assert_eq!(with_noise.programs.len(), 3, "sender + receiver + noise");
        assert_eq!(with_noise.programs[2].verify(), Vec::new());
    }

    /// Tentpole determinism gate: enabling telemetry must not change a single
    /// bit of any transmission, and the recorded timeline must be a valid
    /// (properly nested, per-domain monotone) session trace.
    #[test]
    fn tracing_is_inert_and_produces_a_valid_session_timeline() {
        use sim_core::telemetry::{export, EventKind};

        let config = config(11);
        let payload: Vec<bool> = (0..32).map(|i| i % 3 == 0).collect();
        let mut plain = ChannelSession::new(config.clone()).unwrap();
        let mut traced = ChannelSession::new(config).unwrap();
        traced.enable_tracing();
        assert!(traced.tracing_enabled() && !plain.tracing_enabled());
        for _ in 0..2 {
            let frame = Frame::from_payload(&payload);
            let a = plain.transmit_frame(&frame).unwrap();
            let b = traced.transmit_frame(&frame).unwrap();
            assert_eq!(a, b, "tracing must not perturb transmissions");
        }
        assert_eq!(plain.sim_usage(), traced.sim_usage());
        assert!(traced.sim_usage().phase_cycles.total() > 0);
        assert!(traced.calibration_cycles() > 0);
        assert!(plain.trace_events().is_empty());

        let events = traced.trace_events();
        export::validate(events).expect("session trace must nest and stay monotone");
        let session_spans: Vec<&str> = events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Begin { name, .. } if e.domain == 0 => Some(name.as_ref()),
                _ => None,
            })
            .collect();
        assert_eq!(session_spans, ["calibrate", "frame", "frame"]);
        let machine_spans: Vec<&str> = events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Begin { name, .. } if e.domain != 0 => Some(name.as_ref()),
                _ => None,
            })
            .collect();
        for expected in ["prime", "encode", "wait", "decode"] {
            assert!(
                machine_spans.contains(&expected),
                "missing {expected} span in {machine_spans:?}"
            );
        }
        let bits = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Bit(_)))
            .count();
        assert!(bits > 0, "per-frame bit-decision events must be recorded");

        // Draining leaves the sink recording.
        let event_count = events.len();
        let drained = traced.take_trace();
        assert_eq!(drained.len(), event_count);
        assert!(traced.trace_events().is_empty());
        assert!(traced.tracing_enabled());
    }

    #[test]
    fn sim_usage_accumulates_over_frames() {
        let mut config = config(3);
        config.interrupts = InterruptConfig::none();
        config.tsc = TscConfig::ideal();
        let mut session = ChannelSession::new(config).unwrap();
        assert_eq!(session.sim_usage(), SimUsage::default());
        let payload: Vec<bool> = (0..32).map(|i| i % 2 == 0).collect();
        session.transmit_bits(&payload).unwrap();
        let first = session.sim_usage();
        assert_eq!(first.frames, 1);
        assert!(first.accesses() > 0);
        assert!(first.cycles() > 0);
        session.transmit_bits(&payload).unwrap();
        let second = session.sim_usage();
        assert_eq!(second.frames, 2);
        assert!(second.accesses() > first.accesses());
    }
}
