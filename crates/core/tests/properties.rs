//! Property-based tests for the WB channel's encoding, framing and
//! capacity invariants.

use proptest::prelude::*;
use wb_channel::capacity::{period_for_kbps, rate_kbps};
use wb_channel::encoding::SymbolEncoding;
use wb_channel::eviction::analytic_dirty_eviction_probability;
use wb_channel::protocol::{align_and_score, preamble, Frame, PREAMBLE_BITS};

fn arbitrary_encoding() -> impl Strategy<Value = SymbolEncoding> {
    prop_oneof![
        (1usize..=8).prop_map(|d| SymbolEncoding::binary(d).unwrap()),
        Just(SymbolEncoding::paper_two_bit()),
        Just(SymbolEncoding::multi_bit(vec![0, 2, 4, 6]).unwrap()),
        Just(SymbolEncoding::multi_bit(vec![1, 8]).unwrap()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Bits -> symbols -> bits round-trips (up to zero padding of the final
    /// symbol) for every encoding.
    #[test]
    fn encoding_round_trip(encoding in arbitrary_encoding(),
                           bits in proptest::collection::vec(any::<bool>(), 0..96)) {
        let symbols = encoding.bits_to_symbols(&bits);
        for &s in &symbols {
            prop_assert!(s < encoding.num_symbols());
            prop_assert!(encoding.dirty_lines_for(s) <= SymbolEncoding::MAX_DIRTY_LINES);
        }
        let back = encoding.symbols_to_bits(&symbols);
        prop_assert!(back.len() >= bits.len());
        prop_assert_eq!(&back[..bits.len()], bits.as_slice());
        // Padding bits are all zero.
        prop_assert!(back[bits.len()..].iter().all(|&b| !b));
    }

    /// The dirty-line level is strictly monotone in the symbol value, which is
    /// what makes the multi-level latency decoder well-defined.
    #[test]
    fn dirty_levels_are_monotone(encoding in arbitrary_encoding()) {
        let levels = encoding.levels();
        prop_assert!(levels.windows(2).all(|w| w[0] < w[1]));
        prop_assert_eq!(levels.len(), encoding.num_symbols());
        prop_assert_eq!(1 << encoding.bits_per_symbol(), encoding.num_symbols());
    }

    /// rate_kbps and period_for_kbps are inverse functions.
    #[test]
    fn rate_and_period_are_inverse(bits in 1usize..4, period in 100u64..100_000) {
        let rate = rate_kbps(bits, period, 2.2);
        prop_assert!(rate > 0.0);
        let back = period_for_kbps(bits, rate, 2.2).unwrap();
        // Rounding to whole cycles can move the period by at most one cycle.
        prop_assert!(back.abs_diff(period) <= 1);
    }

    /// The analytic Table V probability is a probability, monotone in both d
    /// and L.
    #[test]
    fn analytic_probability_is_monotone(d in 0usize..=8, l in 1usize..32) {
        let p = analytic_dirty_eviction_probability(8, d, l);
        prop_assert!((0.0..=1.0).contains(&p));
        if d < 8 {
            prop_assert!(analytic_dirty_eviction_probability(8, d + 1, l) >= p);
        }
        prop_assert!(analytic_dirty_eviction_probability(8, d, l + 1) >= p);
    }

    /// Frames always start with the fixed preamble, and a perfectly received
    /// frame aligns at the offset where it was embedded with zero errors.
    #[test]
    fn frame_alignment_recovers_known_offsets(
        payload in proptest::collection::vec(any::<bool>(), 16..80),
        junk in proptest::collection::vec(any::<bool>(), 0..4),
    ) {
        let frame = Frame::from_payload(&payload);
        let expected_preamble = preamble();
        prop_assert_eq!(&frame.bits()[..PREAMBLE_BITS], expected_preamble.as_slice());
        prop_assert_eq!(frame.payload(), payload.as_slice());
        let mut stream = junk.clone();
        stream.extend_from_slice(frame.bits());
        let result = align_and_score(frame.bits(), &stream, 8);
        // The preamble may coincidentally match inside the junk prefix, but
        // the score at the true offset is exact, so the best score is 0..=junk.
        prop_assert!(result.edit_distance <= junk.len());
        prop_assert!(result.bit_error_rate <= junk.len() as f64 / frame.len() as f64);
    }

    /// The scored bit error rate never exceeds 1 + (extra received length /
    /// sent length) and is zero for identical streams.
    #[test]
    fn alignment_score_bounds(bits in proptest::collection::vec(any::<bool>(), 16..64)) {
        let frame = Frame::from_payload(&bits);
        let perfect = align_and_score(frame.bits(), frame.bits(), 4);
        prop_assert_eq!(perfect.edit_distance, 0);
        let empty: Vec<bool> = Vec::new();
        let lost = align_and_score(frame.bits(), &empty, 4);
        prop_assert_eq!(lost.edit_distance, frame.len());
        prop_assert!((lost.bit_error_rate - 1.0).abs() < 1e-12);
    }
}
