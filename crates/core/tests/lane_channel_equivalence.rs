//! The lane transmit path's equivalence contract: a `k`-lane
//! [`LaneChannelSession`] is bit-identical, lane by lane, to `k` serial
//! [`ChannelSession`]s fed the same frames in the same order.

use wb_channel::channel::{ChannelConfig, NoiseConfig};
use wb_channel::encoding::SymbolEncoding;
use wb_channel::lanes::{lane_compatible, LaneChannelSession};
use wb_channel::protocol::Frame;
use wb_channel::session::ChannelSession;

fn config(seed: u64, period: u64) -> ChannelConfig {
    ChannelConfig::builder()
        .encoding(SymbolEncoding::binary(2).unwrap())
        .period_cycles(period)
        .calibration_samples(40)
        .seed(seed)
        .build()
        .unwrap()
}

/// Seed-varied lanes (the common sweep shape: same config, different seeds).
#[test]
fn lanes_match_serial_sessions_frame_by_frame() {
    let configs: Vec<ChannelConfig> = (20..24).map(|seed| config(seed, 5_500)).collect();
    let payload: Vec<bool> = (0..48).map(|i| (i * 7) % 5 < 2).collect();

    let mut lanes = LaneChannelSession::new(&configs).unwrap();
    assert_eq!(lanes.lane_count(), configs.len());
    let mut serial: Vec<ChannelSession> = configs
        .iter()
        .map(|c| ChannelSession::new(c.clone()).unwrap())
        .collect();

    for (lane, session) in serial.iter().enumerate() {
        assert_eq!(
            lanes.decoder(lane),
            session.decoder(),
            "calibration diverged on lane {lane}"
        );
    }

    for _round in 0..2 {
        let frames: Vec<Frame> = (0..configs.len())
            .map(|_| Frame::from_payload(&payload))
            .collect();
        let batched = lanes.transmit_frames(&frames).unwrap();
        for (lane, session) in serial.iter_mut().enumerate() {
            let expected = session.transmit_frame(&frames[lane]).unwrap();
            assert_eq!(batched[lane], expected, "report diverged on lane {lane}");
        }
    }
    for (lane, session) in serial.iter().enumerate() {
        assert_eq!(
            lanes.sim_usage(lane),
            session.sim_usage(),
            "sim usage diverged on lane {lane}"
        );
    }
}

/// Config-varied lanes: different periods and a noisy lane still batch
/// correctly (run-time divergence is handled by the live mask), as long as
/// every lane remains an independent machine.
#[test]
fn heterogeneous_lane_configs_still_match_serial() {
    let mut noisy = config(31, 6_500);
    noisy.noise = Some(NoiseConfig {
        interval: 1_500,
        lines: 2,
        store_fraction: 0.4,
    });
    let configs = vec![config(30, 5_500), noisy];
    let payload: Vec<bool> = (0..32).map(|i| i % 3 == 0).collect();

    let mut lanes = LaneChannelSession::new(&configs).unwrap();
    let frames: Vec<Frame> = (0..configs.len())
        .map(|_| Frame::from_payload(&payload))
        .collect();
    let batched = lanes.transmit_frames(&frames).unwrap();
    for (lane, cfg) in configs.iter().enumerate() {
        let mut session = ChannelSession::new(cfg.clone()).unwrap();
        let expected = session.transmit_frame(&frames[lane]).unwrap();
        assert_eq!(batched[lane], expected, "report diverged on lane {lane}");
    }
}

/// The batched `evaluate` draws each lane's payload stream exactly like the
/// serial session, so evaluation reports agree byte for byte.
#[test]
fn batched_evaluate_matches_serial_evaluate() {
    let configs: Vec<ChannelConfig> = (40..42).map(|seed| config(seed, 5_500)).collect();
    let mut lanes = LaneChannelSession::new(&configs).unwrap();
    let batched = lanes.evaluate(2, 24).unwrap();
    for (lane, cfg) in configs.iter().enumerate() {
        let mut session = ChannelSession::new(cfg.clone()).unwrap();
        let expected = session.evaluate(2, 24).unwrap();
        assert_eq!(
            batched[lane], expected,
            "evaluation diverged on lane {lane}"
        );
    }
}

/// Seed-varied sweep points compile to lane-compatible shapes; changing the
/// symbol count (payload width) breaks the shape, and the static check says
/// so before any batch runs.
#[test]
fn lane_compatibility_gates_config_groups() {
    let payload: Vec<bool> = (0..32).map(|i| i % 2 == 0).collect();
    let group: Vec<ChannelConfig> = (50..54).map(|seed| config(seed, 5_500)).collect();
    assert_eq!(lane_compatible(&group, &payload), Vec::new());

    // A different encoding compiles a different number of symbol bursts.
    let mut odd = config(55, 5_500);
    odd.encoding = SymbolEncoding::paper_two_bit();
    let mixed = vec![config(54, 5_500), odd];
    let diags = lane_compatible(&mixed, &payload);
    assert!(
        diags.iter().any(|d| d.rule == "lane-shape"),
        "expected a lane-shape finding, got {diags:?}"
    );
}
