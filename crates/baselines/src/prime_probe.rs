//! Prime+Probe: the classic contention-based Hit+Miss channel.
//!
//! The receiver fills ("primes") the target set with its own lines; the
//! sender evicts some of them by touching its own lines in the same set; the
//! receiver then re-accesses ("probes") its lines and infers the bit from the
//! probe latency.  Unlike the WB channel, both the prime and the probe touch
//! the whole set every period, and a single noisy cache line already causes
//! probe misses (Sec. VI).

use crate::common::{
    calibrate_threshold, classify_bit, BaselineChannel, BaselineReport, NoiseSpec,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sim_cache::policy::PolicyKind;
use sim_cache::trace::TraceOp;
use sim_core::machine::{Machine, MachineConfig};
use sim_core::memlayout::SetLines;
use sim_core::process::{AddressSpace, ProcessId};
use wb_channel::Error;

const RECEIVER: u16 = 1;
const SENDER: u16 = 2;
const NOISE: u16 = 3;

/// The Prime+Probe covert channel on one L1 set.
#[derive(Debug)]
pub struct PrimeProbe {
    policy: PolicyKind,
    seed: u64,
    /// Lines the sender touches to transmit a `1`.
    sender_lines_per_one: usize,
    calibration_rounds: usize,
}

impl PrimeProbe {
    /// Creates the channel with the paper-typical configuration (sender
    /// touches two lines per `1`).
    pub fn new(seed: u64) -> PrimeProbe {
        PrimeProbe {
            policy: PolicyKind::TreePlru,
            seed,
            sender_lines_per_one: 2,
            calibration_rounds: 32,
        }
    }

    /// Uses a specific L1 replacement policy (e.g. [`PolicyKind::Random`] to
    /// reproduce the paper's observation that random replacement breaks
    /// Prime+Probe priming).
    #[must_use]
    pub fn with_policy(mut self, policy: PolicyKind) -> PrimeProbe {
        self.policy = policy;
        self
    }

    fn run(&mut self, bits: &[bool], noise: Option<NoiseSpec>) -> Result<BaselineReport, Error> {
        let mut machine = Machine::new(MachineConfig::xeon_e5_2650(self.policy, self.seed))?;
        let geometry = machine.l1_geometry();
        let target_set = 11usize;
        let prime_lines = SetLines::build(
            AddressSpace::new(ProcessId(RECEIVER)),
            geometry,
            target_set,
            geometry.associativity,
            0,
        );
        let sender_lines = SetLines::build(
            AddressSpace::new(ProcessId(SENDER)),
            geometry,
            target_set,
            geometry.associativity,
            0,
        );
        let noise_lines = SetLines::build(
            AddressSpace::new(ProcessId(NOISE)),
            geometry,
            target_set,
            2,
            9_000,
        );
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x9a9a);
        let mut sender_accesses = 0u64;

        // Warm everything (one batched trace; same order as before).
        let warm: Vec<TraceOp> = prime_lines
            .lines()
            .iter()
            .chain(sender_lines.lines())
            .map(|&l| TraceOp::read(l))
            .collect();
        machine.run_trace(RECEIVER, &warm);

        let lines_per_one = self.sender_lines_per_one;
        let encode_trace: Vec<TraceOp> = (0..lines_per_one)
            .map(|i| TraceOp::read(sender_lines.line(i)))
            .collect();
        let prime = |machine: &mut Machine, rng: &mut StdRng| {
            let ops: Vec<TraceOp> = prime_lines
                .shuffled(rng)
                .into_iter()
                .map(TraceOp::read)
                .collect();
            machine.run_trace(RECEIVER, &ops);
        };
        let encode = |machine: &mut Machine, bit: bool, accesses: &mut u64| {
            if bit {
                machine.run_trace(SENDER, &encode_trace);
                *accesses += encode_trace.len() as u64;
            }
        };
        let probe = |machine: &mut Machine, rng: &mut StdRng| -> u64 {
            let order = prime_lines.shuffled(rng);
            machine.measured_chase(RECEIVER, &order).0
        };

        let threshold = calibrate_threshold(self.calibration_rounds, |bit| {
            prime(&mut machine, &mut rng);
            let mut scratch = 0;
            encode(&mut machine, bit, &mut scratch);
            probe(&mut machine, &mut rng)
        });

        let mut received = Vec::with_capacity(bits.len());
        let mut observations = Vec::with_capacity(bits.len());
        for &bit in bits {
            prime(&mut machine, &mut rng);
            encode(&mut machine, bit, &mut sender_accesses);
            if let Some(noise) = noise {
                if rng.gen_bool(noise.probability.clamp(0.0, 1.0)) {
                    let line = noise_lines.line(rng.gen_range(0..noise_lines.len()));
                    if noise.dirty {
                        machine.write(NOISE, line);
                    } else {
                        machine.read(NOISE, line);
                    }
                }
            }
            let observed = probe(&mut machine, &mut rng);
            observations.push(observed);
            received.push(classify_bit(&threshold, observed));
        }

        Ok(BaselineReport::new(
            self.name(),
            bits,
            received,
            observations,
            sender_accesses,
        ))
    }
}

impl BaselineChannel for PrimeProbe {
    fn name(&self) -> &'static str {
        "Prime+Probe"
    }

    fn requires_shared_memory(&self) -> bool {
        false
    }

    fn requires_clflush(&self) -> bool {
        false
    }

    fn transmit(&mut self, bits: &[bool]) -> Result<BaselineReport, Error> {
        self.run(bits, None)
    }

    fn transmit_with_noise(
        &mut self,
        bits: &[bool],
        noise: NoiseSpec,
    ) -> Result<BaselineReport, Error> {
        self.run(bits, Some(noise))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(seed: u64, len: usize) -> Vec<bool> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen()).collect()
    }

    #[test]
    fn prime_probe_transmits_without_shared_memory() {
        let mut channel = PrimeProbe::new(5);
        assert!(!channel.requires_shared_memory());
        assert!(!channel.requires_clflush());
        let bits = payload(5, 96);
        let report = channel.transmit(&bits).unwrap();
        assert!(
            report.bit_error_rate < 0.08,
            "Prime+Probe BER {}",
            report.bit_error_rate
        );
    }

    #[test]
    fn noisy_cache_lines_degrade_prime_probe() {
        // Figure 8 / Sec. VI: contention-based Hit+Miss channels are fragile
        // against noisy cache lines, unlike the WB channel.
        let bits = payload(6, 96);
        let clean = PrimeProbe::new(6).transmit(&bits).unwrap();
        let noisy = PrimeProbe::new(6)
            .transmit_with_noise(&bits, NoiseSpec::every_period())
            .unwrap();
        assert!(
            noisy.bit_error_rate > clean.bit_error_rate + 0.05,
            "noise should hurt Prime+Probe: clean {} noisy {}",
            clean.bit_error_rate,
            noisy.bit_error_rate
        );
    }

    #[test]
    fn random_replacement_hurts_prime_probe_priming() {
        // Sec. VI-A: with a random replacement policy the receiver cannot
        // reliably fill the set during the prime phase.
        let bits = payload(7, 96);
        let plru = PrimeProbe::new(7).transmit(&bits).unwrap();
        let random = PrimeProbe::new(7)
            .with_policy(PolicyKind::Random)
            .transmit(&bits)
            .unwrap();
        assert!(
            random.bit_error_rate >= plru.bit_error_rate,
            "random replacement should not improve Prime+Probe (plru {} random {})",
            plru.bit_error_rate,
            random.bit_error_rate
        );
    }
}
