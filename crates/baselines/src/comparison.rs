//! Cross-channel comparisons: Table I, Figure 8 and the Table VI load
//! comparison.

use crate::common::{BaselineChannel, NoiseSpec};
use crate::lru_channel::LruChannel;
use crate::prime_probe::PrimeProbe;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wb_channel::channel::{ChannelConfig, CovertChannel, NoiseConfig};
use wb_channel::encoding::SymbolEncoding;
use wb_channel::Error;

/// One row of the paper's Table I, extended with the requirements the paper
/// discusses in Section VI.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ClassificationRow {
    /// Channel name.
    pub channel: String,
    /// Hit+Miss, Hit+Hit or Miss+Miss.
    pub class: String,
    /// Contention-based or reuse-based.
    pub basis: String,
    /// Whether sender and receiver must share memory.
    pub needs_shared_memory: bool,
    /// Whether the attack needs `clflush`.
    pub needs_clflush: bool,
}

/// The classification table (Table I) for the channels implemented in this
/// repository.
pub fn classification_table() -> Vec<ClassificationRow> {
    let row = |channel: &str, class: &str, basis: &str, mem: bool, flush: bool| ClassificationRow {
        channel: channel.to_owned(),
        class: class.to_owned(),
        basis: basis.to_owned(),
        needs_shared_memory: mem,
        needs_clflush: flush,
    };
    vec![
        row("Flush+Reload", "Hit+Miss", "reuse", true, true),
        row("Flush+Flush", "Hit+Miss", "reuse", true, true),
        row("Evict+Reload", "Hit+Miss", "reuse", true, false),
        row("Prime+Probe", "Hit+Miss", "contention", false, false),
        row("LRU channel", "Hit+Miss", "contention", false, false),
        row(
            "CacheBleed (bank contention)",
            "Hit+Hit",
            "contention",
            false,
            false,
        ),
        row(
            "WB channel (this paper)",
            "Miss+Miss",
            "contention",
            false,
            false,
        ),
    ]
}

/// Result of the Figure 8 noise-robustness comparison for one channel.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NoiseRobustness {
    /// Channel name.
    pub channel: String,
    /// Bit error rate without interference.
    pub ber_clean: f64,
    /// Bit error rate with one noisy cache line per period.
    pub ber_noisy: f64,
}

impl NoiseRobustness {
    /// How much the noise degraded the channel.
    pub fn degradation(&self) -> f64 {
        self.ber_noisy - self.ber_clean
    }
}

/// Runs the Figure 8 experiment: transmits the same random payload over the
/// LRU channel, Prime+Probe and the WB channel, with and without a noisy
/// cache line, and reports the error rates.
///
/// # Errors
///
/// Propagates simulator configuration errors.
pub fn noise_robustness_comparison(bits: usize, seed: u64) -> Result<Vec<NoiseRobustness>, Error> {
    let mut rng = StdRng::seed_from_u64(seed);
    let payload: Vec<bool> = (0..bits).map(|_| rng.gen()).collect();
    let mut results = Vec::new();

    // Baselines.
    let noise = NoiseSpec::every_period();
    let mut lru = LruChannel::new(seed);
    let mut pp = PrimeProbe::new(seed);
    results.push(NoiseRobustness {
        channel: lru.name().to_owned(),
        ber_clean: LruChannel::new(seed).transmit(&payload)?.bit_error_rate,
        ber_noisy: lru.transmit_with_noise(&payload, noise)?.bit_error_rate,
    });
    results.push(NoiseRobustness {
        channel: pp.name().to_owned(),
        ber_clean: PrimeProbe::new(seed).transmit(&payload)?.bit_error_rate,
        ber_noisy: pp.transmit_with_noise(&payload, noise)?.bit_error_rate,
    });

    // WB channel, clean and with a noisy neighbour touching the target set.
    let wb_config = |noisy: bool| -> Result<ChannelConfig, Error> {
        let mut builder = ChannelConfig::builder();
        builder
            .encoding(SymbolEncoding::binary(1)?)
            .period_cycles(5_500)
            .calibration_samples(80)
            .seed(seed);
        if noisy {
            builder.noise(NoiseConfig::single_clean_line(2_500));
        }
        builder.build()
    };
    let clean = CovertChannel::new(wb_config(false)?)?
        .transmit_bits(&payload)?
        .bit_error_rate();
    let noisy = CovertChannel::new(wb_config(true)?)?
        .transmit_bits(&payload)?
        .bit_error_rate();
    results.push(NoiseRobustness {
        channel: "WB channel".to_owned(),
        ber_clean: clean,
        ber_noisy: noisy,
    });

    Ok(results)
}

/// Estimated sender cache loads per millisecond when one bit is sent every
/// `period_cycles` cycles and each bit costs `accesses_per_bit` memory
/// accesses (the Table VI metric for the baseline senders, whose period-based
/// pacing is not simulated cycle-by-cycle).
pub fn loads_per_ms_estimate(accesses_per_bit: f64, period_cycles: u64, clock_ghz: f64) -> f64 {
    if period_cycles == 0 {
        return 0.0;
    }
    let bits_per_ms = clock_ghz * 1e6 / period_cycles as f64;
    accesses_per_bit * bits_per_ms
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_all_three_classes() {
        let table = classification_table();
        assert!(table.iter().any(|r| r.class == "Hit+Miss"));
        assert!(table.iter().any(|r| r.class == "Hit+Hit"));
        assert!(table.iter().any(|r| r.class == "Miss+Miss"));
        // The WB channel needs neither shared memory nor clflush.
        let wb = table.iter().find(|r| r.channel.contains("WB")).unwrap();
        assert!(!wb.needs_shared_memory);
        assert!(!wb.needs_clflush);
    }

    #[test]
    fn wb_channel_is_the_most_noise_robust() {
        let results = noise_robustness_comparison(64, 3).unwrap();
        assert_eq!(results.len(), 3);
        let wb = results.iter().find(|r| r.channel == "WB channel").unwrap();
        let lru = results.iter().find(|r| r.channel == "LRU channel").unwrap();
        assert!(
            wb.degradation() < lru.degradation(),
            "WB degradation {} should be below LRU degradation {}",
            wb.degradation(),
            lru.degradation()
        );
        assert!(wb.ber_noisy < 0.15, "WB channel stays usable under noise");
        assert!(lru.ber_noisy > 0.2, "LRU channel breaks under noise");
    }

    #[test]
    fn load_estimate_scales_with_period_and_accesses() {
        let slow = loads_per_ms_estimate(1.0, 11_000, 2.2);
        let fast = loads_per_ms_estimate(1.0, 5_500, 2.2);
        assert!((fast / slow - 2.0).abs() < 1e-9);
        assert_eq!(loads_per_ms_estimate(1.0, 0, 2.2), 0.0);
        // WB sender: ~0.5 accesses per bit vs LRU sender: 4 accesses per bit.
        assert!(loads_per_ms_estimate(0.5, 11_000, 2.2) < loads_per_ms_estimate(4.0, 11_000, 2.2));
    }
}
