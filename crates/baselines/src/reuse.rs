//! Reuse-based baselines: Flush+Reload, Flush+Flush and Evict+Reload.
//!
//! These are the Hit+Miss channels of the paper's Table I that rely on a
//! cache line *shared* between sender and receiver (a shared library page or
//! page-deduplicated memory).  They are implemented here to substantiate the
//! comparison the paper draws: the WB channel needs neither shared memory nor
//! `clflush`, while these do.

use crate::common::{
    calibrate_threshold, classify_bit, BaselineChannel, BaselineReport, NoiseSpec,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sim_cache::addr::PhysAddr;
use sim_cache::policy::PolicyKind;
use sim_core::machine::{Machine, MachineConfig};
use sim_core::memlayout::SetLines;
use sim_core::process::{AddressSpace, ProcessId};
use wb_channel::Error;

const RECEIVER: u16 = 1;
const SENDER: u16 = 2;
const NOISE: u16 = 3;

/// Which reuse-based primitive the receiver uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReuseKind {
    FlushReload,
    FlushFlush,
    EvictReload,
}

/// A reuse-based covert channel over one shared cache line.
#[derive(Debug)]
pub struct ReuseChannel {
    kind: ReuseKind,
    policy: PolicyKind,
    seed: u64,
    calibration_rounds: usize,
}

impl ReuseChannel {
    /// Flush+Reload (Yarom & Falkner).
    pub fn flush_reload(seed: u64) -> ReuseChannel {
        ReuseChannel {
            kind: ReuseKind::FlushReload,
            policy: PolicyKind::TreePlru,
            seed,
            calibration_rounds: 32,
        }
    }

    /// Flush+Flush (Gruss et al.).
    pub fn flush_flush(seed: u64) -> ReuseChannel {
        ReuseChannel {
            kind: ReuseKind::FlushFlush,
            policy: PolicyKind::TreePlru,
            seed,
            calibration_rounds: 32,
        }
    }

    /// Evict+Reload (no `clflush`, still shared memory).
    pub fn evict_reload(seed: u64) -> ReuseChannel {
        ReuseChannel {
            kind: ReuseKind::EvictReload,
            policy: PolicyKind::TreePlru,
            seed,
            calibration_rounds: 32,
        }
    }

    fn run(&mut self, bits: &[bool], noise: Option<NoiseSpec>) -> Result<BaselineReport, Error> {
        let mut machine = Machine::new(MachineConfig::xeon_e5_2650(self.policy, self.seed))?;
        let geometry = machine.l1_geometry();
        let target_set = 7usize;
        // The shared line lives at a "global" physical address both processes
        // map (e.g. a shared library page): neither party's private space.
        let shared = PhysAddr::from_set_and_tag(target_set, 42, geometry);
        // Eviction set for Evict+Reload and noisy lines for the noise process.
        let receiver_evict = SetLines::build(
            AddressSpace::new(ProcessId(RECEIVER)),
            geometry,
            target_set,
            10,
            1_000,
        );
        let noise_lines = SetLines::build(
            AddressSpace::new(ProcessId(NOISE)),
            geometry,
            target_set,
            2,
            9_000,
        );
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xbead);
        let mut sender_accesses = 0u64;

        // Warm the shared line and the eviction set.
        machine.read(SENDER, shared);
        for &line in receiver_evict.lines() {
            machine.read(RECEIVER, line);
        }

        let kind = self.kind;
        let prepare = |machine: &mut Machine, rng: &mut StdRng| match kind {
            ReuseKind::FlushReload | ReuseKind::FlushFlush => {
                machine.flush(RECEIVER, shared);
            }
            ReuseKind::EvictReload => {
                for line in receiver_evict.shuffled(rng) {
                    machine.read(RECEIVER, line);
                }
            }
        };
        let encode = |machine: &mut Machine, bit: bool, accesses: &mut u64| {
            if bit {
                machine.read(SENDER, shared);
                *accesses += 1;
            }
        };
        let decode = |machine: &mut Machine, rng: &mut StdRng| -> u64 {
            match kind {
                ReuseKind::FlushReload | ReuseKind::EvictReload => {
                    machine.measured_read(RECEIVER, shared).0
                }
                ReuseKind::FlushFlush => {
                    let overhead = 24 + rng.gen_range(0..=3);
                    machine.flush(RECEIVER, shared).cycles + overhead
                }
            }
        };

        // Calibration with known alternating bits (no noise).
        let threshold = calibrate_threshold(self.calibration_rounds, |bit| {
            prepare(&mut machine, &mut rng);
            let mut scratch = 0;
            encode(&mut machine, bit, &mut scratch);
            decode(&mut machine, &mut rng)
        });

        // Payload transmission.
        let mut received = Vec::with_capacity(bits.len());
        let mut observations = Vec::with_capacity(bits.len());
        for &bit in bits {
            prepare(&mut machine, &mut rng);
            encode(&mut machine, bit, &mut sender_accesses);
            if let Some(noise) = noise {
                if rng.gen_bool(noise.probability.clamp(0.0, 1.0)) {
                    let line = noise_lines.line(rng.gen_range(0..noise_lines.len()));
                    if noise.dirty {
                        machine.write(NOISE, line);
                    } else {
                        machine.read(NOISE, line);
                    }
                }
            }
            let observed = decode(&mut machine, &mut rng);
            observations.push(observed);
            received.push(classify_bit(&threshold, observed));
        }

        Ok(BaselineReport::new(
            self.name(),
            bits,
            received,
            observations,
            sender_accesses,
        ))
    }
}

impl BaselineChannel for ReuseChannel {
    fn name(&self) -> &'static str {
        match self.kind {
            ReuseKind::FlushReload => "Flush+Reload",
            ReuseKind::FlushFlush => "Flush+Flush",
            ReuseKind::EvictReload => "Evict+Reload",
        }
    }

    fn requires_shared_memory(&self) -> bool {
        true
    }

    fn requires_clflush(&self) -> bool {
        matches!(self.kind, ReuseKind::FlushReload | ReuseKind::FlushFlush)
    }

    fn transmit(&mut self, bits: &[bool]) -> Result<BaselineReport, Error> {
        self.run(bits, None)
    }

    fn transmit_with_noise(
        &mut self,
        bits: &[bool],
        noise: NoiseSpec,
    ) -> Result<BaselineReport, Error> {
        self.run(bits, Some(noise))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(seed: u64, len: usize) -> Vec<bool> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen()).collect()
    }

    #[test]
    fn flush_reload_transmits_with_low_error() {
        let mut channel = ReuseChannel::flush_reload(1);
        let bits = payload(1, 96);
        let report = channel.transmit(&bits).unwrap();
        assert!(
            report.bit_error_rate < 0.05,
            "Flush+Reload BER {}",
            report.bit_error_rate
        );
        assert!(channel.requires_shared_memory());
        assert!(channel.requires_clflush());
    }

    #[test]
    fn flush_flush_transmits_with_low_error() {
        let mut channel = ReuseChannel::flush_flush(2);
        let bits = payload(2, 96);
        let report = channel.transmit(&bits).unwrap();
        assert!(
            report.bit_error_rate < 0.10,
            "Flush+Flush BER {}",
            report.bit_error_rate
        );
    }

    #[test]
    fn evict_reload_transmits_without_clflush() {
        let mut channel = ReuseChannel::evict_reload(3);
        assert!(!channel.requires_clflush());
        let bits = payload(3, 96);
        let report = channel.transmit(&bits).unwrap();
        assert!(
            report.bit_error_rate < 0.10,
            "Evict+Reload BER {}",
            report.bit_error_rate
        );
    }

    #[test]
    fn sender_accesses_track_only_one_bits() {
        let mut channel = ReuseChannel::flush_reload(4);
        let bits = vec![true, true, false, true, false];
        let report = channel.transmit(&bits).unwrap();
        assert_eq!(report.sender_accesses, 3);
    }
}
