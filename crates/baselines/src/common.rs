//! Shared infrastructure for the baseline cache covert channels.
//!
//! The baselines are implemented as synchronous period-by-period simulations
//! driven directly against a [`sim_core::machine::Machine`]: every period the
//! receiver prepares, the sender encodes one bit, an optional noise process
//! interferes, and the receiver decodes.  This is sufficient for the
//! comparisons the paper makes (noise robustness in Figure 8, requirement
//! matrix in Table I, load counts in Table VI) without duplicating the full
//! SMT pacing machinery of the WB channel.

use analysis::edit_distance::bit_error_rate;
use analysis::threshold::BinaryThreshold;
use wb_channel::Error;

/// How a noisy cache line interferes with a transmission (Figure 8).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NoiseSpec {
    /// Probability that a noisy line is loaded into the target set between
    /// the sender's encoding step and the receiver's decoding step.
    pub probability: f64,
    /// Whether the noisy access is a store (dirtying the line) rather than a
    /// load.
    pub dirty: bool,
}

impl NoiseSpec {
    /// One clean noisy line per period — the scenario of Figure 8.
    pub fn every_period() -> NoiseSpec {
        NoiseSpec {
            probability: 1.0,
            dirty: false,
        }
    }
}

/// Outcome of one baseline transmission.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BaselineReport {
    /// Channel name ("Flush+Reload", "Prime+Probe", ...).
    pub channel: String,
    /// Bits given to the sender.
    pub sent: Vec<bool>,
    /// Bits recovered by the receiver.
    pub received: Vec<bool>,
    /// Receiver observables (latencies or miss counts), one per bit.
    pub observations: Vec<u64>,
    /// Bit error rate (edit distance over sent length).
    pub bit_error_rate: f64,
    /// Total memory accesses the *sender* needed for the whole transmission
    /// (the Table VI stealth metric).
    pub sender_accesses: u64,
}

impl BaselineReport {
    /// Assembles a report from raw transmission data.
    pub fn new(
        channel: &str,
        sent: &[bool],
        received: Vec<bool>,
        observations: Vec<u64>,
        sender_accesses: u64,
    ) -> BaselineReport {
        BaselineReport {
            channel: channel.to_owned(),
            bit_error_rate: bit_error_rate(sent, &received),
            sent: sent.to_vec(),
            received,
            observations,
            sender_accesses,
        }
    }
}

/// A covert channel evaluated against the WB channel.
pub trait BaselineChannel {
    /// Human-readable channel name.
    fn name(&self) -> &'static str;

    /// Whether the channel needs memory shared between sender and receiver
    /// (Table I's reuse-based attacks).
    fn requires_shared_memory(&self) -> bool;

    /// Whether the channel needs the `clflush` instruction.
    fn requires_clflush(&self) -> bool;

    /// Transmits `bits` and returns the report.
    ///
    /// # Errors
    ///
    /// Returns configuration errors from the underlying simulator.
    fn transmit(&mut self, bits: &[bool]) -> Result<BaselineReport, Error>;

    /// Transmits `bits` while a noisy cache line interferes.
    ///
    /// # Errors
    ///
    /// Returns configuration errors from the underlying simulator.
    fn transmit_with_noise(
        &mut self,
        bits: &[bool],
        noise: NoiseSpec,
    ) -> Result<BaselineReport, Error>;
}

/// Classifies an observable with a calibrated threshold, honouring the
/// direction of the channel: for some channels (Flush+Reload) a *lower*
/// observable means bit 1, for others (Prime+Probe, WB) a *higher* one does.
pub fn classify_bit(threshold: &BinaryThreshold, value: u64) -> bool {
    let ones_are_slower = threshold.mean_one >= threshold.mean_zero;
    if ones_are_slower {
        threshold.classify(value as f64)
    } else {
        !threshold.classify(value as f64)
    }
}

/// Calibrates a binary threshold from alternating known-bit observations.
///
/// `observe` is called `rounds` times with the training bit and must return
/// the receiver's observable for that bit.
pub fn calibrate_threshold<F: FnMut(bool) -> u64>(
    rounds: usize,
    mut observe: F,
) -> BinaryThreshold {
    let mut zeros = Vec::new();
    let mut ones = Vec::new();
    for i in 0..rounds.max(8) {
        let bit = i % 2 == 1;
        let value = observe(bit) as f64;
        if bit {
            ones.push(value);
        } else {
            zeros.push(value);
        }
    }
    BinaryThreshold::calibrate(&zeros, &ones)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_computes_edit_distance_based_error_rate() {
        let sent = vec![true, false, true, true];
        let received = vec![true, true, true, true];
        let report = BaselineReport::new("demo", &sent, received, vec![1, 2, 3, 4], 7);
        assert!((report.bit_error_rate - 0.25).abs() < 1e-12);
        assert_eq!(report.sender_accesses, 7);
        assert_eq!(report.channel, "demo");
    }

    #[test]
    fn threshold_calibration_places_boundary_between_classes() {
        let threshold = calibrate_threshold(20, |bit| if bit { 200 } else { 100 });
        assert!(threshold.value() > 100.0 && threshold.value() < 200.0);
        assert!(threshold.classify(180.0));
        assert!(!threshold.classify(120.0));
    }

    #[test]
    fn noise_spec_every_period_is_certain_and_clean() {
        let spec = NoiseSpec::every_period();
        assert_eq!(spec.probability, 1.0);
        assert!(!spec.dirty);
    }

    #[test]
    fn classify_bit_follows_the_channel_direction() {
        // Ones slower (WB / Prime+Probe direction).
        let slower = BinaryThreshold::calibrate(&[100.0], &[200.0]);
        assert!(classify_bit(&slower, 190));
        assert!(!classify_bit(&slower, 110));
        // Ones faster (Flush+Reload direction).
        let faster = BinaryThreshold::calibrate(&[200.0], &[100.0]);
        assert!(classify_bit(&faster, 110));
        assert!(!classify_bit(&faster, 190));
    }
}
