//! The LRU-state channel of Xiong & Szefer (HPCA 2020).
//!
//! This is the closest prior work: a contention-based channel without shared
//! memory that encodes a bit in the *LRU metadata* of a target set rather
//! than in its dirty bits.  The paper's Figure 8(a) walks through the exact
//! access pattern reproduced here and shows why a single noisy cache line
//! breaks it, while the WB channel shrugs it off; Section VII additionally
//! compares the two senders' cache-load footprints (Table VI).

use crate::common::{
    calibrate_threshold, classify_bit, BaselineChannel, BaselineReport, NoiseSpec,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sim_cache::policy::PolicyKind;
use sim_cache::trace::TraceOp;
use sim_core::machine::{Machine, MachineConfig};
use sim_core::memlayout::SetLines;
use sim_core::process::{AddressSpace, ProcessId};
use wb_channel::Error;

const RECEIVER: u16 = 1;
const SENDER: u16 = 2;
const NOISE: u16 = 3;

/// The LRU covert channel on one L1 set (the no-shared-memory variant).
#[derive(Debug)]
pub struct LruChannel {
    policy: PolicyKind,
    seed: u64,
    /// How many times the sender re-touches its line while encoding a `1`
    /// (the LRU sender must keep modulating during the whole period, which is
    /// what makes it noisier than the WB sender in Table VI).
    pub modulations_per_one: usize,
    calibration_rounds: usize,
}

impl LruChannel {
    /// Creates the channel with true-LRU replacement (its natural setting)
    /// and the paper's observation of repeated modulation.
    pub fn new(seed: u64) -> LruChannel {
        LruChannel {
            policy: PolicyKind::TrueLru,
            seed,
            modulations_per_one: 4,
            calibration_rounds: 32,
        }
    }

    /// Uses a different replacement policy (e.g. Tree-PLRU, which the paper
    /// notes already disturbs the LRU channel).
    #[must_use]
    pub fn with_policy(mut self, policy: PolicyKind) -> LruChannel {
        self.policy = policy;
        self
    }

    fn run(&mut self, bits: &[bool], noise: Option<NoiseSpec>) -> Result<BaselineReport, Error> {
        let mut machine = Machine::new(MachineConfig::xeon_e5_2650(self.policy, self.seed))?;
        let geometry = machine.l1_geometry();
        let target_set = 19usize;
        let w = geometry.associativity;
        // Receiver lines 0..7 and the sender's "line 8" (its own address).
        let receiver_lines = SetLines::build(
            AddressSpace::new(ProcessId(RECEIVER)),
            geometry,
            target_set,
            w,
            0,
        );
        let sender_line = SetLines::build(
            AddressSpace::new(ProcessId(SENDER)),
            geometry,
            target_set,
            1,
            0,
        );
        let noise_lines = SetLines::build(
            AddressSpace::new(ProcessId(NOISE)),
            geometry,
            target_set,
            2,
            9_000,
        );
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x14c4);
        let mut sender_accesses = 0u64;

        // Warm all lines (batched; same order as before).
        let warm: Vec<TraceOp> = receiver_lines
            .lines()
            .iter()
            .map(|&l| TraceOp::read(l))
            .collect();
        machine.run_trace(RECEIVER, &warm);
        machine.read(SENDER, sender_line.line(0));

        let modulations = self.modulations_per_one;
        // Step 1 (Figure 8a): the receiver accesses lines 0-3.
        let init_trace: Vec<TraceOp> = (0..w / 2)
            .map(|i| TraceOp::read(receiver_lines.line(i)))
            .collect();
        let init = |machine: &mut Machine| {
            machine.run_trace(RECEIVER, &init_trace);
        };
        // Step 2: the sender repeatedly accesses its own line to send a 1.
        let encode_trace: Vec<TraceOp> = vec![TraceOp::read(sender_line.line(0)); modulations];
        let encode = |machine: &mut Machine, bit: bool, accesses: &mut u64| {
            if bit {
                machine.run_trace(SENDER, &encode_trace);
                *accesses += encode_trace.len() as u64;
            }
        };
        // Step 4: the receiver accesses lines 4-7 and times line 0.
        let second_half: Vec<TraceOp> = (w / 2..w)
            .map(|i| TraceOp::read(receiver_lines.line(i)))
            .collect();
        let decode = |machine: &mut Machine| -> u64 {
            machine.run_trace(RECEIVER, &second_half);
            machine.measured_read(RECEIVER, receiver_lines.line(0)).0
        };

        let threshold = calibrate_threshold(self.calibration_rounds, |bit| {
            init(&mut machine);
            let mut scratch = 0;
            encode(&mut machine, bit, &mut scratch);
            decode(&mut machine)
        });

        let mut received = Vec::with_capacity(bits.len());
        let mut observations = Vec::with_capacity(bits.len());
        for &bit in bits {
            init(&mut machine);
            encode(&mut machine, bit, &mut sender_accesses);
            if let Some(noise) = noise {
                if rng.gen_bool(noise.probability.clamp(0.0, 1.0)) {
                    let line = noise_lines.line(rng.gen_range(0..noise_lines.len()));
                    if noise.dirty {
                        machine.write(NOISE, line);
                    } else {
                        machine.read(NOISE, line);
                    }
                }
            }
            let observed = decode(&mut machine);
            observations.push(observed);
            received.push(classify_bit(&threshold, observed));
        }

        Ok(BaselineReport::new(
            self.name(),
            bits,
            received,
            observations,
            sender_accesses,
        ))
    }
}

impl BaselineChannel for LruChannel {
    fn name(&self) -> &'static str {
        "LRU channel"
    }

    fn requires_shared_memory(&self) -> bool {
        false
    }

    fn requires_clflush(&self) -> bool {
        false
    }

    fn transmit(&mut self, bits: &[bool]) -> Result<BaselineReport, Error> {
        self.run(bits, None)
    }

    fn transmit_with_noise(
        &mut self,
        bits: &[bool],
        noise: NoiseSpec,
    ) -> Result<BaselineReport, Error> {
        self.run(bits, Some(noise))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(seed: u64, len: usize) -> Vec<bool> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen()).collect()
    }

    #[test]
    fn lru_channel_transmits_under_true_lru() {
        let mut channel = LruChannel::new(8);
        let bits = payload(8, 96);
        let report = channel.transmit(&bits).unwrap();
        assert!(
            report.bit_error_rate < 0.05,
            "LRU channel BER {}",
            report.bit_error_rate
        );
        assert!(!channel.requires_shared_memory());
        assert!(!channel.requires_clflush());
    }

    #[test]
    fn a_single_noisy_line_breaks_the_lru_channel() {
        // Figure 8(a): with one noisy line per period, accessing line 0
        // always misses, so zeros are decoded as ones.
        let bits = payload(9, 96);
        let clean = LruChannel::new(9).transmit(&bits).unwrap();
        let noisy = LruChannel::new(9)
            .transmit_with_noise(&bits, NoiseSpec::every_period())
            .unwrap();
        assert!(
            noisy.bit_error_rate > 0.2,
            "noise should break the LRU channel, BER {}",
            noisy.bit_error_rate
        );
        assert!(noisy.bit_error_rate > clean.bit_error_rate + 0.1);
    }

    #[test]
    fn lru_sender_touches_the_cache_more_than_once_per_one_bit() {
        let mut channel = LruChannel::new(10);
        let bits = vec![true, false, true, true];
        let report = channel.transmit(&bits).unwrap();
        assert_eq!(
            report.sender_accesses,
            3 * channel.modulations_per_one as u64
        );
    }
}
