//! # baselines
//!
//! Baseline cache covert channels implemented on the same simulator substrate
//! as the WB channel, so that the comparisons drawn in the paper — Table I's
//! classification, Figure 8's noise robustness, Table VI's sender footprint —
//! can be reproduced head-to-head:
//!
//! * [`reuse::ReuseChannel`] — Flush+Reload, Flush+Flush and Evict+Reload
//!   (Hit+Miss, reuse-based, require shared memory).
//! * [`prime_probe::PrimeProbe`] — Prime+Probe (Hit+Miss, contention-based).
//! * [`lru_channel::LruChannel`] — the LRU-state channel of Xiong & Szefer,
//!   the closest prior work.
//! * [`comparison`] — the classification table, the Figure 8 noise-robustness
//!   experiment and Table VI load estimates.
//!
//! ## Example
//!
//! ```rust
//! use baselines::common::BaselineChannel;
//! use baselines::prime_probe::PrimeProbe;
//!
//! # fn main() -> Result<(), wb_channel::Error> {
//! let mut channel = PrimeProbe::new(7);
//! let report = channel.transmit(&[true, false, true, false])?;
//! assert!(report.bit_error_rate <= 1.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod common;
pub mod comparison;
pub mod lru_channel;
pub mod prime_probe;
pub mod reuse;

pub use common::{BaselineChannel, BaselineReport, NoiseSpec};
pub use comparison::{classification_table, noise_robustness_comparison};
pub use lru_channel::LruChannel;
pub use prime_probe::PrimeProbe;
pub use reuse::ReuseChannel;
