//! The content-addressed result store.
//!
//! A result is the NDJSON body of one scenario's tables, keyed by
//! `(scenario id, scale, root seed)` — the complete input of a scenario run
//! (Sizes are a pure function of the scale, point seeds derive from the
//! root seed). Because the runner is byte-identical at any thread count,
//! two jobs that agree on the key agree on every output byte, so a cache
//! hit can be served without recomputing anything and without equivocation
//! about staleness: entries never expire, they are facts.
//!
//! Memory stays bounded over an unbounded service lifetime: with a cache
//! directory configured, every insert is persisted as `<dir>/<key>.ndjson`
//! (write-then-rename, so a crash can never leave a truncated result) and
//! at most [`DEFAULT_RESIDENT_CAP`] bodies stay resident in memory —
//! older ones are evicted FIFO and transparently re-read from disk on the
//! next request. Startup never scans the directory: a restarted service
//! re-serves accumulated results lazily, at O(1) boot cost regardless of
//! cache size. Without a directory there is nowhere to evict *to*, so the
//! memory-only cache keeps everything (and the operator has accepted that
//! by not passing `--cache-dir`).

use runner::Scale;
use std::collections::{HashMap, VecDeque};
use std::io;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// Resident bodies kept in memory when the cache is disk-backed; a seed
/// sweep over thousands of keys settles at this many in RAM, the rest on
/// disk.
pub const DEFAULT_RESIDENT_CAP: usize = 512;

/// The cache key of one scenario result: `<id>-<scale>-<seed as 0x…>`.
///
/// The key doubles as the `GET /results/<key>` path segment and (with
/// `.ndjson` appended) the on-disk file name; scenario ids are kebab-case
/// ASCII, so no escaping is ever needed.
pub fn result_key(scenario_id: &str, scale: Scale, root_seed: u64) -> String {
    format!("{scenario_id}-{}-{root_seed:#018x}", scale.label())
}

/// Whether `key` has the shape [`result_key`] produces (ASCII
/// alphanumerics, `-` and `_`).
///
/// `GET /results/<key>` hands client-controlled text to the cache, and the
/// disk read-through joins the key into the cache directory — an
/// unvalidated `../../etc/something` would escape it. Server-generated keys
/// never contain a path separator, so rejecting everything else loses
/// nothing.
pub fn valid_key(key: &str) -> bool {
    !key.is_empty()
        && key
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
}

/// The resident (in-memory) slice of the cache.
#[derive(Debug, Default)]
struct Resident {
    bodies: HashMap<String, Arc<str>>,
    /// Resident keys, oldest first, for FIFO eviction.
    order: VecDeque<String>,
}

/// In-memory (and optionally on-disk) store of scenario result bodies.
#[derive(Debug)]
pub struct ResultCache {
    dir: Option<PathBuf>,
    resident_cap: usize,
    resident: Mutex<Resident>,
}

impl ResultCache {
    /// Opens the cache with the default resident bound.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating or scanning the directory.
    pub fn open(dir: Option<PathBuf>) -> io::Result<ResultCache> {
        ResultCache::open_with_resident_cap(dir, DEFAULT_RESIDENT_CAP)
    }

    /// Opens the cache. With `Some(dir)` the directory is created if
    /// needed; existing `<key>.ndjson` files are *not* scanned — they are
    /// read through lazily on the first `get` of their key, so startup cost
    /// is O(1) however many results have accumulated, and an unreadable
    /// entry (corrupted, non-UTF-8, a directory wearing the extension)
    /// simply answers as a miss instead of bricking the service.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory.
    pub fn open_with_resident_cap(
        dir: Option<PathBuf>,
        resident_cap: usize,
    ) -> io::Result<ResultCache> {
        if let Some(dir) = &dir {
            std::fs::create_dir_all(dir)?;
        }
        Ok(ResultCache {
            dir,
            resident_cap: resident_cap.max(1),
            resident: Mutex::new(Resident::default()),
        })
    }

    /// Looks a result body up: resident memory first, then (when
    /// disk-backed) the cache directory, re-residenting what it finds.
    /// Keys that could not have come from [`result_key`] (see
    /// [`valid_key`]) answer `None` without touching the filesystem.
    pub fn get(&self, key: &str) -> Option<Arc<str>> {
        if !valid_key(key) {
            return None;
        }
        if let Some(body) = self
            .resident
            .lock()
            .expect("cache lock poisoned")
            .bodies
            .get(key)
        {
            return Some(Arc::clone(body));
        }
        let dir = self.dir.as_ref()?;
        let body = std::fs::read_to_string(dir.join(format!("{key}.ndjson"))).ok()?;
        let body: Arc<str> = Arc::from(body.as_str());
        self.keep_resident(key, Arc::clone(&body));
        Some(body)
    }

    /// Stores a result body under `key`, persisting it to the cache
    /// directory when one is configured.
    ///
    /// Determinism makes double-inserts of the same key idempotent (both
    /// writers computed the same bytes), so concurrent identical jobs need
    /// no insert-side coordination.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the on-disk copy cannot be written; the
    /// in-memory entry is kept either way (the cache is still correct, only
    /// persistence degraded).
    pub fn insert(&self, key: &str, body: String) -> io::Result<()> {
        let body: Arc<str> = Arc::from(body.as_str());
        self.keep_resident(key, Arc::clone(&body));
        if let Some(dir) = &self.dir {
            // Write-then-rename so a crash or full disk mid-write can never
            // leave a truncated `<key>.ndjson` behind — entries never
            // expire, so a partial file would otherwise be served as an
            // "exact" result forever after a restart. The unique temp name
            // keeps concurrent identical inserts from interleaving, and
            // loading only considers `.ndjson` files, so orphaned temps are
            // never mistaken for results.
            static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
            let tmp = dir.join(format!(
                "{key}.{}.{}.tmp",
                std::process::id(),
                TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
            ));
            let target = dir.join(format!("{key}.ndjson"));
            let written =
                std::fs::write(&tmp, body.as_bytes()).and_then(|()| std::fs::rename(&tmp, &target));
            if written.is_err() {
                let _ = std::fs::remove_file(&tmp);
            }
            written?;
        }
        Ok(())
    }

    /// Makes `key` resident, evicting the oldest resident bodies beyond the
    /// bound — but only entries whose disk copy actually exists, so a body
    /// whose persist failed (disk full, permissions) is never dropped into
    /// the void: it stays resident, pinned, still servable.
    fn keep_resident(&self, key: &str, body: Arc<str>) {
        let mut resident = self.resident.lock().expect("cache lock poisoned");
        if resident.bodies.insert(key.to_owned(), body).is_none() {
            resident.order.push_back(key.to_owned());
        }
        if let Some(dir) = &self.dir {
            while resident.bodies.len() > self.resident_cap {
                let Some(oldest) = resident.order.pop_front() else {
                    // Everything left is pinned (no disk copy): stay over
                    // the bound rather than lose completed results.
                    break;
                };
                if dir.join(format!("{oldest}.ndjson")).exists() {
                    resident.bodies.remove(&oldest);
                }
                // Not on disk: its order slot is consumed, leaving it
                // effectively pinned in memory.
            }
        }
    }

    /// Number of resident results (disk-backed entries may exceed this).
    pub fn len(&self) -> usize {
        self.resident
            .lock()
            .expect("cache lock poisoned")
            .bodies
            .len()
    }

    /// Whether no result is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("service-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn keys_encode_id_scale_and_seed() {
        assert_eq!(
            result_key("table2", Scale::Quick, 2022),
            "table2-quick-0x00000000000007e6"
        );
        assert_eq!(
            result_key("fig5-7", Scale::Full, u64::MAX),
            "fig5-7-full-0xffffffffffffffff"
        );
    }

    #[test]
    fn memory_only_cache_round_trips() {
        let cache = ResultCache::open(None).unwrap();
        assert!(cache.is_empty());
        assert!(cache.get("missing").is_none());
        cache.insert("k1", "line\n".to_owned()).unwrap();
        assert_eq!(cache.get("k1").as_deref(), Some("line\n"));
        assert_eq!(cache.len(), 1);
        // Idempotent re-insert.
        cache.insert("k1", "line\n".to_owned()).unwrap();
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn disk_backed_cache_persists_across_reopen() {
        let dir = temp_dir("persist");
        let cache = ResultCache::open(Some(dir.clone())).unwrap();
        cache
            .insert("table2-quick-0x0000000000000001", "row\n".to_owned())
            .unwrap();
        assert!(dir.join("table2-quick-0x0000000000000001.ndjson").exists());
        // The write-then-rename path leaves no temp file behind.
        let leftovers = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .path()
                    .extension()
                    .is_some_and(|x| x == "tmp")
            })
            .count();
        assert_eq!(leftovers, 0);
        drop(cache);
        // Reopening never scans the directory (O(1) startup): nothing is
        // resident until the first read-through.
        let reopened = ResultCache::open(Some(dir.clone())).unwrap();
        assert!(reopened.is_empty());
        assert_eq!(
            reopened.get("table2-quick-0x0000000000000001").as_deref(),
            Some("row\n")
        );
        assert_eq!(reopened.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unreadable_entries_answer_as_misses_not_errors() {
        let dir = temp_dir("unreadable");
        let cache = ResultCache::open(Some(dir.clone())).unwrap();
        cache.insert("good", "ok\n".to_owned()).unwrap();
        // A directory wearing the result extension: read_to_string errors.
        std::fs::create_dir_all(dir.join("evil.ndjson")).unwrap();
        // Non-UTF-8 bytes under the result extension: not valid results.
        std::fs::write(dir.join("binary.ndjson"), [0xff, 0xfe, 0x00]).unwrap();
        let reopened = ResultCache::open(Some(dir.clone())).unwrap();
        assert_eq!(reopened.get("good").as_deref(), Some("ok\n"));
        assert!(reopened.get("evil").is_none());
        assert!(reopened.get("binary").is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn traversal_shaped_keys_never_reach_the_filesystem() {
        let dir = temp_dir("traversal");
        std::fs::create_dir_all(&dir).unwrap();
        // A file an attacker would love to read through the cache dir.
        std::fs::write(dir.join("secret.ndjson"), "secret\n").unwrap();
        let nested = dir.join("cache");
        let cache = ResultCache::open(Some(nested)).unwrap();
        assert!(cache.get("../secret").is_none());
        assert!(cache.get("..%2Fsecret").is_none());
        assert!(cache.get("a/b").is_none());
        assert!(cache.get("").is_none());
        assert!(valid_key("table2-quick-0x00000000000007e6"));
        assert!(!valid_key("../secret"));
        assert!(!valid_key("a.b"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_body_whose_persist_was_lost_is_pinned_not_dropped() {
        let dir = temp_dir("pinned");
        let cache = ResultCache::open_with_resident_cap(Some(dir.clone()), 1).unwrap();
        cache.insert("a", "a-body\n".to_owned()).unwrap();
        // Simulate a lost/failed persist: the disk copy vanishes.
        std::fs::remove_file(dir.join("a.ndjson")).unwrap();
        // Inserting more must not evict `a` into the void…
        cache.insert("b", "b-body\n".to_owned()).unwrap();
        assert_eq!(cache.get("a").as_deref(), Some("a-body\n"));
        // …and `b` (which is safely on disk) stays reachable either way.
        assert_eq!(cache.get("b").as_deref(), Some("b-body\n"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resident_set_is_bounded_with_disk_read_through() {
        let dir = temp_dir("bounded");
        let cache = ResultCache::open_with_resident_cap(Some(dir.clone()), 2).unwrap();
        cache.insert("k1", "one\n".to_owned()).unwrap();
        cache.insert("k2", "two\n".to_owned()).unwrap();
        cache.insert("k3", "three\n".to_owned()).unwrap();
        // Only the newest two stay resident; the oldest was evicted…
        assert_eq!(cache.len(), 2);
        // …but is transparently served from disk, becoming resident again.
        assert_eq!(cache.get("k1").as_deref(), Some("one\n"));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get("k2").as_deref(), Some("two\n"));
        assert_eq!(cache.get("k3").as_deref(), Some("three\n"));
        // The memory-only cache never evicts: there is no disk to fall
        // back to.
        let unbounded = ResultCache::open_with_resident_cap(None, 1).unwrap();
        unbounded.insert("a", "a\n".to_owned()).unwrap();
        unbounded.insert("b", "b\n".to_owned()).unwrap();
        assert_eq!(unbounded.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
