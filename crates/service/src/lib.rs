//! # service
//!
//! The long-running experiment service (`repro serve`): the scenario
//! registry and work-stealing runner of this reproduction, resident behind
//! a hand-rolled HTTP/1.1 server with a job queue, a content-addressed
//! result cache and a `/metrics` endpoint.
//!
//! One-shot `repro run` pays process startup and recomputes every sweep on
//! every invocation. The service amortizes both: scenarios run once per
//! `(scenario id, scale, root seed)` and every later request for the same
//! key is served from memory/disk — exact, not approximate, because the
//! runner's determinism contract makes results a pure function of the key.
//! That is the prerequisite for interactive-latency bandwidth/BER sweeps
//! (paper Sec. VII) and mirrors how cache-attack evaluations amortize
//! calibration across thousands of channel trials.
//!
//! ## Endpoints
//!
//! | Endpoint | Meaning |
//! |---|---|
//! | `GET /` | endpoint index |
//! | `GET /scenarios` | the registry, one NDJSON line per scenario |
//! | `POST /jobs` | submit `{"scenarios", "scale", "seed", "threads"}` |
//! | `GET /jobs/<id>` | job status line + result NDJSON rows once done |
//! | `GET /results/<key>` | one cached scenario body by cache key |
//! | `GET /metrics` | request/latency/queue/cache/pool counters |
//! | `POST /shutdown` | stop accepting jobs, drain in-flight, exit |
//!
//! The crate is registry-generic like [`runner`] itself: `bench` hands its
//! scenario registry to [`Server::bind`], tests hand in synthetic ones.
//!
//! ```no_run
//! use runner::Registry;
//! use service::{Server, ServerConfig};
//!
//! let registry = Registry::new(); // bench::registry() in the real binary
//! let config = ServerConfig {
//!     addr: "127.0.0.1:0".to_owned(),
//!     ..ServerConfig::default()
//! };
//! let server = Server::bind(registry, config)?;
//! println!("serving on http://{}", server.local_addr()?);
//! server.serve()?; // blocks until POST /shutdown has drained the queue
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod client;
pub mod http;
pub mod job;
pub mod json;
pub mod metrics;
pub mod server;

pub use cache::{result_key, ResultCache};
pub use client::ClientResponse;
pub use job::{Job, JobSpec, JobState};
pub use metrics::{Endpoint, Metrics};
pub use server::{Server, ServerConfig};
