//! A minimal JSON reader for job-submission bodies.
//!
//! The service's only JSON *input* is the `POST /jobs` spec: a flat object
//! of strings, unsigned integers, booleans and arrays of strings. This
//! parser covers exactly that value grammar (objects, arrays, strings with
//! the standard escapes, unsigned decimal integers, `true`/`false`/`null`)
//! and rejects everything else with a positioned error. Output encoding
//! reuses [`analysis::table::json_string`] — the service never needs a
//! general-purpose emitter.

/// A parsed JSON value (the subset the service accepts).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned decimal integer. Floats and negative numbers are
    /// rejected — no field of a job spec needs them, and refusing keeps
    /// seeds exact (a seed routed through `f64` would silently lose bits).
    UInt(u64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in source order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Parses `text` as one JSON value (trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// Returns a message naming the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut parser = Parser {
            text,
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        let value = parser.value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(format!("trailing data at byte {}", parser.pos));
        }
        Ok(value)
    }

    /// Looks a key up in an object (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer value, if this is an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Deepest accepted container nesting. A job spec needs two levels; the cap
/// exists because the parser recurses per `[`/`{`, and an adversarial body
/// of 100k brackets (well under the request-size limit) would otherwise
/// overflow the handler thread's stack and abort the whole resident server.
const MAX_DEPTH: usize = 32;

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_whitespace();
        self.bytes.get(self.pos).copied()
    }

    fn consume(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}",
                char::from(byte),
                self.pos
            ))
        }
    }

    fn try_consume(&mut self, byte: u8) -> bool {
        if self.peek() == Some(byte) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.nested(Parser::object),
            Some(b'[') => self.nested(Parser::array),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'0'..=b'9') => self.uint(),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-') => Err(format!(
                "negative numbers are not accepted (byte {})",
                self.pos
            )),
            _ => Err(format!("expected a JSON value at byte {}", self.pos)),
        }
    }

    /// Runs a container parser one nesting level deeper, enforcing the
    /// recursion cap.
    fn nested(&mut self, parse: fn(&mut Self) -> Result<Json, String>) -> Result<Json, String> {
        if self.depth >= MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} at byte {}",
                self.pos
            ));
        }
        self.depth += 1;
        let value = parse(self);
        self.depth -= 1;
        value
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn uint(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if let Some(b'.' | b'e' | b'E') = self.bytes.get(self.pos) {
            return Err(format!(
                "only unsigned integers are accepted (byte {start})"
            ));
        }
        // The slice holds only ASCII digits, so UTF-8 re-validation cannot
        // fail; routed through the error path anyway — the parser never
        // panics on request bytes.
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("malformed number at byte {start}"))?
            .parse()
            .map(Json::UInt)
            .map_err(|_| format!("integer out of range at byte {start}"))
    }

    fn object(&mut self) -> Result<Json, String> {
        self.consume(b'{')?;
        let mut fields = Vec::new();
        if self.try_consume(b'}') {
            return Ok(Json::Object(fields));
        }
        loop {
            let key = self.string()?;
            self.consume(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            if !self.try_consume(b',') {
                self.consume(b'}')?;
                return Ok(Json::Object(fields));
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.consume(b'[')?;
        let mut items = Vec::new();
        if self.try_consume(b']') {
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            if !self.try_consume(b',') {
                self.consume(b']')?;
                return Ok(Json::Array(items));
            }
        }
    }

    /// Reads the four hex digits of one `\u` escape (cursor already past
    /// the `\u`) and advances over them.
    fn hex_unit(&mut self) -> Result<u32, String> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or("truncated \\u escape")?;
        let unit = u32::from_str_radix(hex, 16).map_err(|_| format!("bad \\u escape \"{hex}\""))?;
        self.pos += 4;
        Ok(unit)
    }

    fn string(&mut self) -> Result<String, String> {
        self.consume(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err("unterminated string".to_owned());
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    let escape = rest.get(1).copied().ok_or("unterminated escape")?;
                    self.pos += 2;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.hex_unit()?;
                            let code = match unit {
                                // High surrogate: JSON encodes non-BMP
                                // characters as a \uD800-\uDBFF,
                                // \uDC00-\uDFFF pair.
                                0xD800..=0xDBFF => {
                                    if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                                        return Err(format!(
                                            "unpaired high surrogate \\u{unit:04x}"
                                        ));
                                    }
                                    self.pos += 2;
                                    let low = self.hex_unit()?;
                                    if !(0xDC00..=0xDFFF).contains(&low) {
                                        return Err(format!(
                                            "high surrogate \\u{unit:04x} not followed by a \
                                             low surrogate"
                                        ));
                                    }
                                    0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00)
                                }
                                0xDC00..=0xDFFF => {
                                    return Err(format!("unpaired low surrogate \\u{unit:04x}"));
                                }
                                code => code,
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or(format!("invalid codepoint {code:#x}"))?,
                            );
                        }
                        other => {
                            return Err(format!("unknown escape '\\{}'", char::from(other)));
                        }
                    }
                }
                _ => {
                    // O(1) per character: the input arrived as `&str`, so
                    // slicing at the cursor (always a char boundary) is
                    // valid by construction. Re-validating the whole
                    // remainder per character would make one long string
                    // O(n²) — a cheap CPU-exhaustion vector against the
                    // resident server.
                    let Some(c) = self.text[self.pos..].chars().next() else {
                        return Err("unterminated string".to_owned());
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_job_spec_shape() {
        let json = Json::parse(
            "{\"scenarios\": [\"table*\", \"fig6\"], \"scale\": \"quick\", \
             \"seed\": 2022, \"threads\": 4}",
        )
        .unwrap();
        assert_eq!(json.get("scale").and_then(Json::as_str), Some("quick"));
        assert_eq!(json.get("seed").and_then(Json::as_u64), Some(2022));
        assert_eq!(json.get("threads").and_then(Json::as_u64), Some(4));
        let patterns: Vec<&str> = json
            .get("scenarios")
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .filter_map(Json::as_str)
            .collect();
        assert_eq!(patterns, ["table*", "fig6"]);
    }

    #[test]
    fn parses_scalars_and_escapes() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("0").unwrap(), Json::UInt(0));
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::UInt(u64::MAX)
        );
        assert_eq!(
            Json::parse("\"a\\n\\\"b\\u0041\"").unwrap(),
            Json::Str("a\n\"bA".to_owned())
        );
        assert_eq!(
            Json::parse("\"\\b\\f\\/\"").unwrap(),
            Json::Str("\u{8}\u{c}/".to_owned())
        );
        // Non-BMP characters arrive as UTF-16 surrogate pairs.
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::Str("😀".to_owned())
        );
        assert!(Json::parse("\"\\ud83d\"")
            .unwrap_err()
            .contains("surrogate"));
        assert!(Json::parse("\"\\ud83dx\"")
            .unwrap_err()
            .contains("surrogate"));
        assert!(Json::parse("\"\\ude00\"")
            .unwrap_err()
            .contains("surrogate"));
        assert!(Json::parse("\"\\ud83d\\u0041\"")
            .unwrap_err()
            .contains("surrogate"));
        assert_eq!(Json::parse("[]").unwrap(), Json::Array(Vec::new()));
        assert_eq!(Json::parse("{}").unwrap(), Json::Object(Vec::new()));
    }

    #[test]
    fn rejects_what_a_seed_cannot_survive() {
        // Floats and negatives would corrupt a u64 seed — refuse loudly.
        assert!(Json::parse("1.5").is_err());
        assert!(Json::parse("-3").is_err());
        assert!(Json::parse("1e9").is_err());
        assert!(Json::parse("18446744073709551616").is_err());
    }

    #[test]
    fn long_strings_parse_in_linear_time() {
        // A request-limit-sized string must parse promptly (the quadratic
        // re-validation this guards against took tens of seconds here).
        let long = format!("\"{}ünïcödé{}\"", "x".repeat(100_000), "y".repeat(100_000));
        let parsed = Json::parse(&long).unwrap();
        assert_eq!(parsed.as_str().map(str::len), Some(long.len() - 2));
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_stack_overflow() {
        // An adversarial body of brackets must come back as Err, never
        // recurse the handler thread's stack into an abort.
        let deep_arrays = "[".repeat(100_000);
        assert!(Json::parse(&deep_arrays).unwrap_err().contains("nesting"));
        let deep_objects = "{\"k\":".repeat(100_000);
        assert!(Json::parse(&deep_objects).unwrap_err().contains("nesting"));
        // The cap still admits far more nesting than any job spec uses.
        let fine = format!("{}1{}", "[".repeat(30), "]".repeat(30));
        assert!(Json::parse(&fine).is_ok());
        let too_deep = format!("{}1{}", "[".repeat(33), "]".repeat(33));
        assert!(Json::parse(&too_deep).is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("{\"a\":1,}").is_err());
        assert!(Json::parse("[1 2]").is_err());
        assert!(Json::parse("{\"a\":1} junk").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("tru").is_err());
    }

    #[test]
    fn accessors_return_none_on_type_mismatch() {
        let json = Json::parse("{\"a\": 1}").unwrap();
        assert!(json.get("missing").is_none());
        assert!(json.get("a").unwrap().as_str().is_none());
        assert!(json.as_u64().is_none());
        assert!(Json::UInt(1).get("a").is_none());
        assert!(Json::Null.as_array().is_none());
    }
}
