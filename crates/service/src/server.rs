//! The resident experiment server: accept loop, routing, job workers and
//! graceful shutdown.
//!
//! Concurrency model, kept deliberately boring:
//!
//! * **HTTP handling is thread-per-connection, bounded.** The accept loop
//!   hands each connection to a short-lived handler thread (capped at
//!   [`MAX_CONNECTIONS`]; beyond that, connections are shed), so a slow or
//!   silent client can stall only its own thread — never `/metrics`, job
//!   polling or `/shutdown`. Every endpoint is a lock-snapshot plus string
//!   formatting — microseconds — while all heavy work happens on job
//!   workers.
//! * **Job execution is pooled.** `job_workers` threads pull from a bounded
//!   queue (submissions beyond `queue_capacity` get `503`) and run each
//!   job's uncached scenarios through `runner::execute`, which fans sweep
//!   points across the job's (clamped) thread count.
//! * **Shutdown drains.** `POST /shutdown` stops *new* job submissions
//!   immediately but keeps answering reads while the queue drains; once the
//!   last job finishes, the accept loop exits and [`Server::serve`] returns.

use crate::cache::{result_key, ResultCache};
use crate::http::{read_request, write_response, Request, Response};
use crate::job::{scenario_body, Job, JobSpec, JobState};
use crate::json::Json;
use crate::metrics::{Endpoint, Metrics};
use analysis::table::json_string;
use runner::pool;
use runner::{execute, Registry, RunConfig, Scenario};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Upper bound on concurrent connection-handler threads; connections beyond
/// it are shed (dropped) instead of queued behind potentially stuck ones.
pub const MAX_CONNECTIONS: usize = 64;

/// How a [`Server`] is configured; see the field docs for defaults.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`host:port`; port `0` picks an ephemeral port).
    pub addr: String,
    /// Job-worker threads: how many jobs execute concurrently.
    pub job_workers: usize,
    /// Upper bound (and default) for a job's `threads` field.
    pub max_job_threads: usize,
    /// Result-cache directory; `None` keeps the cache memory-only.
    pub cache_dir: Option<PathBuf>,
    /// Maximum queued-but-not-running jobs before `POST /jobs` answers 503.
    pub queue_capacity: usize,
    /// Finished jobs retained for `GET /jobs/<id>` before the oldest is
    /// evicted. Bounds the service's memory over an unbounded lifetime;
    /// *results* outlive the job record in the content-addressed cache.
    pub job_history: usize,
    /// Default root seed for specs that omit `seed`.
    pub default_seed: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:7878".to_owned(),
            job_workers: 2,
            max_job_threads: pool::default_threads(),
            cache_dir: None,
            queue_capacity: 64,
            job_history: 256,
            default_seed: 2022,
        }
    }
}

/// Queue state behind the one service mutex.
#[derive(Debug, Default)]
struct QueueState {
    jobs: HashMap<u64, Job>,
    pending: VecDeque<u64>,
    /// Finished job ids, oldest first, for history eviction.
    finished: VecDeque<u64>,
    running: usize,
    next_id: u64,
}

impl QueueState {
    /// Records `id` as finished and evicts the oldest finished job records
    /// beyond `history` (queued/running jobs are never evicted).
    fn retire(&mut self, id: u64, history: usize) {
        self.finished.push_back(id);
        while self.finished.len() > history {
            let Some(evicted) = self.finished.pop_front() else {
                break;
            };
            self.jobs.remove(&evicted);
        }
    }
}

/// Everything the accept loop and the job workers share.
#[derive(Debug)]
struct Shared {
    registry: Registry,
    cache: ResultCache,
    metrics: Metrics,
    queue: Mutex<QueueState>,
    wake: Condvar,
    shutdown: AtomicBool,
    connections: AtomicUsize,
    max_job_threads: usize,
    queue_capacity: usize,
    job_history: usize,
    default_seed: u64,
}

impl Shared {
    /// Locks the queue, recovering from poisoning. The state is a plain
    /// collection of job records and stays structurally valid even if a
    /// holder panicked mid-update (the workers additionally catch job
    /// panics and retire the job as errored), so a request must never be
    /// answered with a panic just because another thread once unwound here.
    fn lock_queue(&self) -> MutexGuard<'_, QueueState> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// True once the queue holds no pending or running job.
    fn idle(&self) -> bool {
        let queue = self.lock_queue();
        queue.pending.is_empty() && queue.running == 0
    }
}

/// The bound-but-not-yet-serving experiment server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    job_workers: usize,
}

impl Server {
    /// Binds the listener and opens the result cache.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from binding `config.addr` or opening the
    /// cache directory.
    pub fn bind(registry: Registry, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let cache = ResultCache::open(config.cache_dir.clone())?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                registry,
                cache,
                metrics: Metrics::default(),
                queue: Mutex::new(QueueState::default()),
                wake: Condvar::new(),
                shutdown: AtomicBool::new(false),
                connections: AtomicUsize::new(0),
                max_job_threads: config.max_job_threads.max(1),
                queue_capacity: config.queue_capacity.max(1),
                job_history: config.job_history.max(1),
                default_seed: config.default_seed,
            }),
            job_workers: config.job_workers.max(1),
        })
    }

    /// The address actually bound (resolves port `0` to the real port).
    ///
    /// # Errors
    ///
    /// Returns the OS error if the socket has no local address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until a `POST /shutdown` has been received *and* every queued
    /// job has finished. Spawns `job_workers` worker threads for the
    /// lifetime of the call.
    ///
    /// # Errors
    ///
    /// Returns a fatal listener error (per-connection errors are counted in
    /// the metrics and do not stop the server).
    pub fn serve(self) -> io::Result<()> {
        let Server {
            listener,
            shared,
            job_workers,
        } = self;
        let workers: Vec<_> = (0..job_workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();

        // Non-blocking accept so the loop can notice drained shutdown even
        // when no client ever connects again.
        listener.set_nonblocking(true)?;
        let result = loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    // One short-lived thread per connection: a client that
                    // connects and sends nothing stalls only itself (its
                    // 5 s read timeout), not the whole service. The counter
                    // bounds handler threads; beyond it, shed the
                    // connection rather than queue behind stuck ones.
                    if shared.connections.fetch_add(1, Ordering::AcqRel) >= MAX_CONNECTIONS {
                        shared.connections.fetch_sub(1, Ordering::AcqRel);
                        drop(stream);
                        continue;
                    }
                    let shared = Arc::clone(&shared);
                    std::thread::spawn(move || {
                        handle_connection(&shared, stream);
                        shared.connections.fetch_sub(1, Ordering::AcqRel);
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if shared.shutdown.load(Ordering::Acquire) && shared.idle() {
                        break Ok(());
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => break Err(e),
            }
        };

        // Stop the workers even on a fatal listener error, then join them
        // so no job is abandoned mid-flight.
        shared.shutdown.store(true, Ordering::Release);
        shared.wake.notify_all();
        for worker in workers {
            let _ = worker.join();
        }
        // Let in-flight connection handlers finish writing — the
        // `/shutdown` acknowledgement itself is one of them, and returning
        // (and letting the process exit) mid-write would reset it. Bounded
        // by a little over the handlers' own 5 s socket timeouts.
        let drain_deadline = Instant::now() + Duration::from_secs(15);
        while shared.connections.load(Ordering::Acquire) > 0 && Instant::now() < drain_deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        result
    }
}

/// One job worker: pull, run, repeat; exit when shut down and drained.
fn worker_loop(shared: &Shared) {
    loop {
        let job_id = {
            let mut queue = shared.lock_queue();
            loop {
                if let Some(id) = queue.pending.pop_front() {
                    queue.running += 1;
                    if let Some(job) = queue.jobs.get_mut(&id) {
                        job.state = JobState::Running;
                    }
                    break id;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                queue = shared
                    .wake
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        // A panic escaping `run_job` (e.g. from a scenario's `assemble`
        // fold, which the executor runs uncaught on this thread) must not
        // kill the worker or leak `running` — that would wedge graceful
        // shutdown forever. Catch it and retire the job as errored.
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_job(shared, job_id);
        }))
        .is_err();
        {
            let mut queue = shared.lock_queue();
            queue.running -= 1;
            if panicked {
                let history = shared.job_history;
                if let Some(job) = queue.jobs.get_mut(&job_id) {
                    job.state = JobState::Done;
                    // `run_job` unwound before recording anything: resolve
                    // the keys so scenarios that *did* land in the cache
                    // (earlier hits, or runs completed before the panic)
                    // still serve their bodies; only the keys with no body
                    // count as errors.
                    job.keys = job
                        .scenario_ids
                        .iter()
                        .map(|id| result_key(id, job.spec.scale, job.spec.seed))
                        .collect();
                    job.errors = job
                        .keys
                        .iter()
                        .filter(|key| shared.cache.get(key).is_none())
                        .count()
                        .max(1);
                    queue.retire(job_id, history);
                }
            }
        }
        if panicked {
            shared.metrics.record_job_finished(true);
        }
        // Wake sibling workers (more jobs may be pending) — the accept loop
        // polls, so nothing else needs a nudge.
        shared.wake.notify_all();
    }
}

/// Executes one job: serve scenarios from the cache where possible, run the
/// rest, record everything back on the job.
fn run_job(shared: &Shared, job_id: u64) {
    let Some((spec, scenario_ids)) = ({
        let queue = shared.lock_queue();
        queue
            .jobs
            .get(&job_id)
            .map(|job| (job.spec.clone(), job.scenario_ids.clone()))
    }) else {
        return;
    };

    let keys: Vec<String> = scenario_ids
        .iter()
        .map(|id| result_key(id, spec.scale, spec.seed))
        .collect();
    let uncached: Vec<&'static str> = scenario_ids
        .iter()
        .zip(&keys)
        .filter(|(_, key)| shared.cache.get(key).is_none())
        .map(|(id, _)| *id)
        .collect();
    let hits = scenario_ids.len() - uncached.len();
    shared
        .metrics
        .record_cache(hits as u64, uncached.len() as u64);

    let mut errors = 0usize;
    let mut error_bodies: Vec<(String, Arc<str>)> = Vec::new();
    if !uncached.is_empty() {
        // Ids were resolved against the registry at submission; filter_map
        // keeps an impossible miss from panicking the worker.
        let selected: Vec<&Scenario> = uncached
            .iter()
            .filter_map(|id| shared.registry.get(id))
            .collect();
        let config = RunConfig {
            scale: spec.scale,
            threads: spec.threads,
            root_seed: spec.seed,
            lanes: 1,
            progress: false,
        };
        let runs = execute(&selected, &config);
        for run in &runs {
            // Freshly simulated work feeds the per-scenario /metrics
            // counters (cache hits never reach this loop's scenarios).
            shared
                .metrics
                .record_scenario_sim(run.id, run.sim_cycles, run.sim_accesses);
            let key = result_key(run.id, spec.scale, spec.seed);
            let body = scenario_body(run, &key);
            if run.error.is_none() {
                // Persist best-effort: a failed disk write downgrades to a
                // memory-only entry, it must not fail the job.
                let _ = shared.cache.insert(&key, body);
            } else {
                errors += 1;
                error_bodies.push((key, Arc::from(body.as_str())));
            }
        }
    }

    let mut queue = shared.lock_queue();
    if let Some(job) = queue.jobs.get_mut(&job_id) {
        job.state = JobState::Done;
        job.keys = keys;
        job.cache_hits = hits;
        job.cache_misses = uncached.len();
        job.errors = errors;
        job.error_bodies = error_bodies;
        queue.retire(job_id, shared.job_history);
    }
    drop(queue);
    shared.metrics.record_job_finished(errors > 0);
}

/// Reads, routes and answers one connection, recording request metrics.
fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    // The listener is non-blocking; make sure the accepted socket is not
    // (platforms differ on inheritance), then bound slow clients.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let start = Instant::now();
    let (endpoint, response) = match read_request(&mut stream) {
        Ok(request) => route(shared, &request),
        Err(error_response) => (Endpoint::Other, error_response),
    };
    // Record before writing: once a client has read its response, the
    // request is guaranteed visible in `/metrics` (handlers run on their
    // own threads, so the other order would race observers).
    let latency_us = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
    shared
        .metrics
        .record_request(endpoint, response.status, latency_us);
    let _ = write_response(&mut stream, &response);
}

/// Dispatches one parsed request to its endpoint handler.
fn route(shared: &Shared, request: &Request) -> (Endpoint, Response) {
    let method = request.method.as_str();
    let path = request.path.as_str();
    match (method, path) {
        ("GET", "/") => (Endpoint::Index, index()),
        ("GET", "/scenarios") => (Endpoint::Scenarios, scenarios(shared)),
        ("POST", "/jobs") => (Endpoint::JobsPost, submit_job(shared, &request.body)),
        ("GET", "/metrics") => (
            Endpoint::Metrics,
            Response::text(shared.metrics.render(shared.cache.len(), &pool::stats())),
        ),
        ("POST", "/shutdown") => (Endpoint::Shutdown, shutdown(shared)),
        ("GET", _) if path.starts_with("/jobs/") => (
            Endpoint::JobsGet,
            job_status(shared, &path["/jobs/".len()..]),
        ),
        ("GET", _) if path.starts_with("/results/") => (
            Endpoint::Results,
            result(shared, &path["/results/".len()..]),
        ),
        (_, "/" | "/scenarios" | "/jobs" | "/metrics" | "/shutdown") => (
            Endpoint::Other,
            Response::error(405, &format!("method {method} not allowed on {path}")),
        ),
        _ => (
            Endpoint::Other,
            Response::error(404, &format!("no such endpoint {path} (see GET /)")),
        ),
    }
}

/// `GET /` — one NDJSON line naming every endpoint.
fn index() -> Response {
    Response::ndjson(
        "{\"type\":\"service\",\"name\":\"repro\",\"endpoints\":[\
         \"GET /scenarios\",\"POST /jobs\",\"GET /jobs/<id>\",\
         \"GET /results/<key>\",\"GET /metrics\",\"POST /shutdown\"]}\n"
            .to_owned(),
    )
}

/// `GET /scenarios` — one NDJSON line per registered scenario.
fn scenarios(shared: &Shared) -> Response {
    let mut body = String::new();
    for scenario in shared.registry.scenarios() {
        body.push_str(&format!(
            "{{\"type\":\"scenario\",\"id\":{},\"paper_ref\":{},\"section\":{},\
             \"points_quick\":{},\"points_full\":{},\"summary\":{}}}\n",
            json_string(scenario.id),
            json_string(scenario.paper_ref),
            json_string(scenario.section),
            (scenario.points)(runner::Scale::Quick),
            (scenario.points)(runner::Scale::Full),
            json_string(scenario.summary),
        ));
    }
    Response::ndjson(body)
}

/// `POST /jobs` — validate, resolve, enqueue; `202` with the status line.
fn submit_job(shared: &Shared, body: &str) -> Response {
    let json = match Json::parse(body) {
        Ok(json) => json,
        Err(message) => return Response::error(400, &format!("invalid JSON body: {message}")),
    };
    let spec = match JobSpec::from_json(&json, shared.default_seed, shared.max_job_threads) {
        Ok(spec) => spec,
        Err(message) => return Response::error(400, &message),
    };
    let scenario_ids: Vec<&'static str> = match shared.registry.select(&spec.patterns) {
        Ok(selected) => selected.iter().map(|s| s.id).collect(),
        Err(message) => return Response::error(400, &message),
    };
    let mut queue = shared.lock_queue();
    // Checked under the queue lock: a job enqueued after the workers
    // observed (shutdown && pending empty) and exited would strand in the
    // queue and wedge the accept loop's idle check forever. Under the lock,
    // either this check sees the flag, or the workers see the new job.
    if shared.shutdown.load(Ordering::Acquire) {
        return Response::error(503, "shutting down; no new jobs accepted");
    }
    if queue.pending.len() >= shared.queue_capacity {
        return Response::error(
            503,
            &format!("job queue full ({} pending)", queue.pending.len()),
        );
    }
    queue.next_id += 1;
    let id = queue.next_id;
    let job = Job::new(id, spec, scenario_ids);
    let status = job.status_line();
    queue.jobs.insert(id, job);
    // Gauge up *before* the job becomes poppable (still under the lock):
    // an already-awake worker could otherwise finish a fully-cached job —
    // and decrement the gauge — before this thread increments it,
    // underflowing queue depth to u64::MAX for concurrent /metrics readers.
    shared.metrics.record_job_enqueued();
    queue.pending.push_back(id);
    drop(queue);
    shared.wake.notify_all();
    Response::ndjson_status(202, status)
}

/// `GET /jobs/<id>` — the status line, plus every result body once done.
fn job_status(shared: &Shared, name: &str) -> Response {
    let Some(id) = name.strip_prefix('j').and_then(|n| n.parse::<u64>().ok()) else {
        return Response::error(400, &format!("malformed job id {name:?} (expected j<n>)"));
    };
    let snapshot = {
        let queue = shared.lock_queue();
        queue.jobs.get(&id).cloned()
    };
    let Some(job) = snapshot else {
        return Response::error(404, &format!("no such job \"j{id}\""));
    };
    let mut body = job.status_line();
    if job.state == JobState::Done {
        for key in &job.keys {
            if let Some(cached) = shared.cache.get(key) {
                body.push_str(&cached);
            } else if let Some((_, error_body)) = job.error_bodies.iter().find(|(k, _)| k == key) {
                body.push_str(error_body);
            }
        }
    }
    Response::ndjson(body)
}

/// `GET /results/<key>` — one cached scenario body, straight from the store.
fn result(shared: &Shared, key: &str) -> Response {
    match shared.cache.get(key) {
        Some(body) => Response::ndjson(body.to_string()),
        None => Response::error(404, &format!("no cached result for key {key:?}")),
    }
}

/// `POST /shutdown` — stop accepting jobs, drain, then exit `serve`.
fn shutdown(shared: &Shared) -> Response {
    shared.shutdown.store(true, Ordering::Release);
    shared.wake.notify_all();
    let pending = shared.metrics.queue_depth();
    Response::ndjson(format!(
        "{{\"type\":\"shutdown\",\"state\":\"draining\",\"jobs_in_flight\":{pending}}}\n"
    ))
}
