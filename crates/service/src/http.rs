//! Minimal HTTP/1.1 framing over `std::net::TcpStream`.
//!
//! Exactly the subset the experiment service needs: one request per
//! connection (`Connection: close`), request bodies framed by
//! `Content-Length`, responses framed the same way. Hand-rolled because the
//! build environment is offline — no hyper, no tiny_http — and the service's
//! protocol surface (five endpoints, small JSON/NDJSON payloads) does not
//! justify more.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request line + headers, before the blank line.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Upper bound on a request body (job specs are tiny; this is a backstop).
pub const MAX_BODY_BYTES: usize = 256 * 1024;

/// A parsed HTTP request: method, path and (possibly empty) UTF-8 body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Upper-cased request method (`GET`, `POST`, …).
    pub method: String,
    /// The request target as sent (path only; the service uses no queries).
    pub path: String,
    /// The request body, framed by `Content-Length` (empty if absent).
    pub body: String,
}

/// An HTTP response about to be written: status, content type and body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code (200, 202, 400, 404, 503, …).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A `200 OK` NDJSON response (the service's default content type).
    pub fn ndjson(body: String) -> Response {
        Response {
            status: 200,
            content_type: "application/x-ndjson",
            body,
        }
    }

    /// An NDJSON response with an explicit status (e.g. `202 Accepted`).
    pub fn ndjson_status(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/x-ndjson",
            body,
        }
    }

    /// A `200 OK` plain-text response (the `/metrics` snapshot).
    pub fn text(body: String) -> Response {
        Response {
            status: 200,
            content_type: "text/plain; charset=utf-8",
            body,
        }
    }

    /// An error response: one NDJSON line carrying the status and message.
    pub fn error(status: u16, message: &str) -> Response {
        Response {
            status,
            content_type: "application/x-ndjson",
            body: format!(
                "{{\"type\":\"error\",\"status\":{status},\"error\":{}}}\n",
                analysis::table::json_string(message)
            ),
        }
    }
}

/// The reason phrase for the status codes the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Total time one request may take to arrive. The per-read socket timeout
/// alone would let a trickle client (one byte every few seconds) hold a
/// handler thread for hours — 64 of those exhaust the connection bound and
/// deny the whole service; this deadline caps any handler's lifetime.
pub const REQUEST_DEADLINE: std::time::Duration = std::time::Duration::from_secs(10);

/// Reads and parses one request from `stream`.
///
/// # Errors
///
/// Returns the error *response* to send back: `413` when the head or body
/// exceeds its size limit, `400` for every other framing problem
/// (malformed request line, non-UTF-8 body, premature EOF, read timeout,
/// the overall [`REQUEST_DEADLINE`] expiring).
pub fn read_request(stream: &mut TcpStream) -> Result<Request, Response> {
    let bad = |message: String| Response::error(400, &message);
    let deadline = std::time::Instant::now() + REQUEST_DEADLINE;
    let check_deadline = || {
        if std::time::Instant::now() >= deadline {
            Err(bad(format!(
                "request not complete within {REQUEST_DEADLINE:?}"
            )))
        } else {
            Ok(())
        }
    };
    // Read until the head/body separator, then top up to Content-Length.
    let mut buffer = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buffer) {
            break pos;
        }
        if buffer.len() > MAX_HEAD_BYTES {
            return Err(Response::error(
                413,
                &format!("request head exceeds {MAX_HEAD_BYTES} bytes"),
            ));
        }
        check_deadline()?;
        match stream.read(&mut chunk) {
            Ok(0) => return Err(bad("connection closed before request head".to_owned())),
            Ok(n) => buffer.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(bad(format!("read error: {e}"))),
        }
    };

    let head = std::str::from_utf8(&buffer[..head_end])
        .map_err(|_| bad("request head is not UTF-8".to_owned()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next(), parts.next()) {
        (Some(method), Some(path), Some(version)) if version.starts_with("HTTP/1") => {
            (method.to_ascii_uppercase(), path.to_owned())
        }
        _ => return Err(bad(format!("malformed request line {request_line:?}"))),
    };

    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad(format!("bad Content-Length {:?}", value.trim())))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(Response::error(
            413,
            &format!("request body exceeds {MAX_BODY_BYTES} bytes"),
        ));
    }

    let mut body = buffer[head_end + 4..].to_vec();
    while body.len() < content_length {
        check_deadline()?;
        match stream.read(&mut chunk) {
            Ok(0) => return Err(bad("connection closed mid-body".to_owned())),
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(bad(format!("read error: {e}"))),
        }
    }
    body.truncate(content_length);
    let body = String::from_utf8(body).map_err(|_| bad("request body is not UTF-8".to_owned()))?;

    Ok(Request { method, path, body })
}

/// Index of the `\r\n\r\n` head/body separator, if present.
fn find_head_end(buffer: &[u8]) -> Option<usize> {
    buffer.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Writes `response` to `stream` with `Connection: close` framing.
///
/// # Errors
///
/// Returns any I/O error from the socket (a hung-up client is not fatal to
/// the server; the caller logs and moves on).
pub fn write_response(stream: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Round-trips one raw request through a real socket pair. The client
    /// half-closes its write side after sending, so a request that claims
    /// more body than it carries hits EOF instead of blocking the reader.
    fn parse_raw(raw: &[u8]) -> Result<Request, Response> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut client = TcpStream::connect(addr).unwrap();
            client.write_all(&raw).unwrap();
            client.shutdown(std::net::Shutdown::Write).unwrap();
            // Keep the socket open long enough for the reader to finish.
            client
        });
        let (mut stream, _) = listener.accept().unwrap();
        // Belt and braces: a buggy parser must fail the test, not hang it.
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(5)))
            .unwrap();
        let request = read_request(&mut stream);
        drop(writer.join().unwrap());
        request
    }

    #[test]
    fn parses_a_post_with_body() {
        let request =
            parse_raw(b"POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"a\":1}")
                .unwrap();
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/jobs");
        assert_eq!(request.body, "{\"a\":1}");
    }

    #[test]
    fn parses_a_get_without_body() {
        let request = parse_raw(b"GET /metrics HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(request.method, "GET");
        assert_eq!(request.path, "/metrics");
        assert_eq!(request.body, "");
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        assert_eq!(parse_raw(b"NOT-HTTP\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(
            parse_raw(b"GET /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort")
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(
            parse_raw(b"GET /x HTTP/1.1\r\nContent-Length: zz\r\n\r\n")
                .unwrap_err()
                .status,
            400
        );
        // Size limits answer 413, distinguishable from malformed input.
        assert_eq!(
            parse_raw(b"POST /jobs HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n")
                .unwrap_err()
                .status,
            413
        );
    }

    #[test]
    fn response_framing_includes_length_and_close() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reader = std::thread::spawn(move || {
            let mut client = TcpStream::connect(addr).unwrap();
            let mut raw = String::new();
            client.read_to_string(&mut raw).unwrap();
            raw
        });
        let (mut stream, _) = listener.accept().unwrap();
        write_response(&mut stream, &Response::ndjson("{\"x\":1}\n".to_owned())).unwrap();
        drop(stream);
        let raw = reader.join().unwrap();
        assert!(raw.starts_with("HTTP/1.1 200 OK\r\n"), "{raw}");
        assert!(raw.contains("Content-Length: 8\r\n"));
        assert!(raw.contains("Connection: close\r\n"));
        assert!(raw.ends_with("{\"x\":1}\n"));
    }

    #[test]
    fn error_responses_are_one_ndjson_line() {
        let response = Response::error(404, "no such job \"j9\"");
        assert_eq!(response.status, 404);
        assert_eq!(
            response.body,
            "{\"type\":\"error\",\"status\":404,\"error\":\"no such job \\\"j9\\\"\"}\n"
        );
        assert_eq!(reason(404), "Not Found");
        assert_eq!(reason(599), "Unknown");
    }
}
