//! Job specs, job lifecycle state and the NDJSON bodies they render to.
//!
//! A *job* is one `POST /jobs` submission: a scenario selection (glob
//! patterns), a scale, a root seed and a thread count. Scenario patterns
//! are resolved against the registry at submission time (a typo is a `400`,
//! not a queued failure); execution happens later on a job worker, which
//! serves each resolved scenario from the result cache when possible and
//! runs the rest through `runner::execute`.

use crate::json::Json;
use analysis::table::json_string;
use runner::{Scale, ScenarioRun};
use std::sync::Arc;

/// Everything a `POST /jobs` body can say.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Scenario selection: exact ids, globs, or `all`.
    pub patterns: Vec<String>,
    /// Experiment scale.
    pub scale: Scale,
    /// Root seed all scenario/point seeds derive from.
    pub seed: u64,
    /// Worker threads for this job's sweep (clamped by the server config).
    pub threads: usize,
}

impl JobSpec {
    /// Parses a job spec from the `POST /jobs` JSON body.
    ///
    /// Accepted fields: `scenarios` (string or array of strings, required),
    /// `scale` (`"quick"`/`"full"`, default quick), `seed` (unsigned
    /// integer or `"0x…"` string, default `default_seed`) and `threads`
    /// (unsigned integer, default and upper bound `max_threads`).
    ///
    /// # Errors
    ///
    /// Returns a message describing the first invalid field; the server
    /// responds `400` with it.
    pub fn from_json(
        json: &Json,
        default_seed: u64,
        max_threads: usize,
    ) -> Result<JobSpec, String> {
        let patterns = match json.get("scenarios") {
            Some(Json::Str(one)) => vec![one.clone()],
            Some(Json::Array(items)) => {
                let patterns: Vec<String> = items
                    .iter()
                    .map(|item| item.as_str().map(str::to_owned))
                    .collect::<Option<_>>()
                    .ok_or("\"scenarios\" array must contain only strings")?;
                if patterns.is_empty() {
                    return Err("\"scenarios\" must not be empty".to_owned());
                }
                patterns
            }
            Some(_) => return Err("\"scenarios\" must be a string or array of strings".to_owned()),
            None => return Err("missing required field \"scenarios\"".to_owned()),
        };
        let scale = match json.get("scale") {
            None => Scale::Quick,
            Some(value) => value
                .as_str()
                .and_then(Scale::from_label)
                .ok_or("\"scale\" must be \"quick\" or \"full\"")?,
        };
        let seed = match json.get("seed") {
            None => default_seed,
            Some(Json::UInt(n)) => *n,
            Some(Json::Str(text)) => parse_seed(text)
                .ok_or_else(|| format!("\"seed\" string {text:?} is not a decimal or 0x… u64"))?,
            Some(_) => return Err("\"seed\" must be an unsigned integer or \"0x…\"".to_owned()),
        };
        let threads = match json.get("threads") {
            None => max_threads,
            Some(value) => match value.as_u64() {
                Some(n) if n >= 1 => (n as usize).min(max_threads),
                _ => return Err("\"threads\" must be an integer >= 1".to_owned()),
            },
        };
        Ok(JobSpec {
            patterns,
            scale,
            seed,
            threads,
        })
    }
}

/// Parses a seed written in decimal or `0x…` hexadecimal.
pub fn parse_seed(text: &str) -> Option<u64> {
    if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        text.parse().ok()
    }
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a job worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// All scenarios finished (individual scenarios may still have errored;
    /// see the per-result status lines).
    Done,
}

impl JobState {
    /// Stable lower-case label used in status lines.
    pub fn label(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
        }
    }
}

/// One submitted job and everything learned about it so far.
#[derive(Debug, Clone)]
pub struct Job {
    /// Sequential id, rendered as `j<n>`.
    pub id: u64,
    /// The validated spec.
    pub spec: JobSpec,
    /// Scenario ids the patterns resolved to, in registry order.
    pub scenario_ids: Vec<&'static str>,
    /// Lifecycle state.
    pub state: JobState,
    /// Result-cache keys, one per scenario (filled in when done).
    pub keys: Vec<String>,
    /// Scenarios served from the cache.
    pub cache_hits: usize,
    /// Scenarios that had to run.
    pub cache_misses: usize,
    /// Scenarios that finished with an error.
    pub errors: usize,
    /// Bodies of errored scenarios (errors are not cached), keyed like the
    /// cache so body assembly can fall back to them.
    pub error_bodies: Vec<(String, Arc<str>)>,
}

impl Job {
    /// A freshly accepted job.
    pub fn new(id: u64, spec: JobSpec, scenario_ids: Vec<&'static str>) -> Job {
        Job {
            id,
            spec,
            scenario_ids,
            state: JobState::Queued,
            keys: Vec::new(),
            cache_hits: 0,
            cache_misses: 0,
            errors: 0,
            error_bodies: Vec::new(),
        }
    }

    /// The job's public name (`j<n>`).
    pub fn name(&self) -> String {
        format!("j{}", self.id)
    }

    /// The one-line status record: the first line of every `/jobs/<id>`
    /// response and the body of the `POST /jobs` acknowledgement.
    ///
    /// Job-specific fields (id, state, cache counters) live only on this
    /// line; everything after it is the scenarios' cached result bodies,
    /// which are byte-identical across identical jobs.
    pub fn status_line(&self) -> String {
        let scenarios: Vec<String> = self.scenario_ids.iter().map(|id| json_string(id)).collect();
        format!(
            "{{\"type\":\"job\",\"id\":{},\"state\":{},\"scenarios\":[{}],\
             \"scale\":{},\"seed\":{},\"threads\":{},\"cache_hits\":{},\
             \"cache_misses\":{},\"errors\":{}}}\n",
            json_string(&self.name()),
            json_string(self.state.label()),
            scenarios.join(","),
            json_string(self.spec.scale.label()),
            json_string(&format!("{:#018x}", self.spec.seed)),
            self.spec.threads,
            self.cache_hits,
            self.cache_misses,
            self.errors,
        )
    }
}

/// Renders one completed scenario run as its cacheable NDJSON body: a
/// `{"type":"result",...}` header line, then each output table's NDJSON.
///
/// The body is a pure function of the run's tables (wall time and any other
/// non-deterministic field is deliberately excluded), which is what makes
/// cache bodies byte-identical across identical submissions.
pub fn scenario_body(run: &ScenarioRun, key: &str) -> String {
    let mut out = match &run.error {
        Some(error) => format!(
            "{{\"type\":\"result\",\"key\":{},\"scenario\":{},\"status\":\"error\",\
             \"error\":{}}}\n",
            json_string(key),
            json_string(run.id),
            json_string(error),
        ),
        None => format!(
            "{{\"type\":\"result\",\"key\":{},\"scenario\":{},\"status\":\"ok\",\
             \"tables\":{}}}\n",
            json_string(key),
            json_string(run.id),
            run.tables.len(),
        ),
    };
    for (stem, table) in &run.tables {
        out.push_str(&table.to_ndjson(stem));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use analysis::table::Table;

    fn spec_from(text: &str) -> Result<JobSpec, String> {
        JobSpec::from_json(&Json::parse(text).unwrap(), 2022, 8)
    }

    #[test]
    fn spec_defaults_and_clamps() {
        let spec = spec_from("{\"scenarios\":\"table2\"}").unwrap();
        assert_eq!(spec.patterns, ["table2"]);
        assert_eq!(spec.scale, Scale::Quick);
        assert_eq!(spec.seed, 2022);
        assert_eq!(spec.threads, 8);
        let spec = spec_from(
            "{\"scenarios\":[\"table*\",\"fig6\"],\"scale\":\"full\",\"seed\":7,\"threads\":99}",
        )
        .unwrap();
        assert_eq!(spec.patterns, ["table*", "fig6"]);
        assert_eq!(spec.scale, Scale::Full);
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.threads, 8, "clamped to the server maximum");
    }

    #[test]
    fn spec_accepts_hex_seed_strings() {
        let spec = spec_from("{\"scenarios\":\"x\",\"seed\":\"0xff\"}").unwrap();
        assert_eq!(spec.seed, 255);
        let spec = spec_from("{\"scenarios\":\"x\",\"seed\":\"123\"}").unwrap();
        assert_eq!(spec.seed, 123);
    }

    #[test]
    fn spec_rejects_bad_fields_with_clear_messages() {
        assert!(spec_from("{}").unwrap_err().contains("scenarios"));
        assert!(spec_from("{\"scenarios\":[]}")
            .unwrap_err()
            .contains("empty"));
        assert!(spec_from("{\"scenarios\":[1]}")
            .unwrap_err()
            .contains("strings"));
        assert!(spec_from("{\"scenarios\":\"x\",\"scale\":\"paper\"}")
            .unwrap_err()
            .contains("scale"));
        assert!(spec_from("{\"scenarios\":\"x\",\"seed\":\"0xzz\"}")
            .unwrap_err()
            .contains("seed"));
        assert!(spec_from("{\"scenarios\":\"x\",\"threads\":0}")
            .unwrap_err()
            .contains("threads"));
    }

    #[test]
    fn status_line_is_one_compact_json_record() {
        let spec = spec_from("{\"scenarios\":\"table2\",\"seed\":2022,\"threads\":2}").unwrap();
        let mut job = Job::new(1, spec, vec!["table2"]);
        job.state = JobState::Done;
        job.cache_hits = 1;
        let line = job.status_line();
        assert_eq!(
            line,
            "{\"type\":\"job\",\"id\":\"j1\",\"state\":\"done\",\"scenarios\":[\"table2\"],\
             \"scale\":\"quick\",\"seed\":\"0x00000000000007e6\",\"threads\":2,\
             \"cache_hits\":1,\"cache_misses\":0,\"errors\":0}\n"
        );
        assert_eq!(line.lines().count(), 1);
    }

    #[test]
    fn scenario_bodies_render_ok_and_error_runs() {
        let mut table = Table::new("Demo", &["a"]);
        table.push_row(["1"]);
        let ok = ScenarioRun {
            id: "table2",
            paper_ref: "Table II",
            scale: Scale::Quick,
            seed: 1,
            points: 1,
            wall_ms: 123.4,
            sim_cycles: 7,
            sim_accesses: 3,
            phase_cycles: [0; runner::scenario::PHASE_COUNT],
            lanes: 1,
            tables: vec![("table2".to_owned(), table)],
            error: None,
        };
        let body = scenario_body(&ok, "table2-quick-0x1");
        assert!(body.starts_with(
            "{\"type\":\"result\",\"key\":\"table2-quick-0x1\",\"scenario\":\"table2\",\
             \"status\":\"ok\",\"tables\":1}\n"
        ));
        assert!(body.contains("\"type\":\"row\""));
        // Wall time must never leak into the cacheable body.
        assert!(!body.contains("123.4"));

        let failed = ScenarioRun {
            tables: Vec::new(),
            error: Some("boom".to_owned()),
            ..ok
        };
        let body = scenario_body(&failed, "k");
        assert!(body.contains("\"status\":\"error\""));
        assert!(body.contains("\"error\":\"boom\""));
        assert_eq!(body.lines().count(), 1);
    }
}
