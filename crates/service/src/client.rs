//! A tiny `std::net::TcpStream` HTTP client for the service.
//!
//! Enough to drive every endpoint from integration tests and the CI smoke
//! without `curl` semantics leaking into the test suite: one request per
//! connection (matching the server's `Connection: close`), status + body
//! out, everything else ignored.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// What a request came back with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response body.
    pub body: String,
}

impl ClientResponse {
    /// Whether the status is a success (2xx).
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

/// Sends one request and reads the full response.
///
/// # Errors
///
/// Returns connection/read/write errors and malformed responses as
/// `io::Error` (tests treat any of them as fatal).
pub fn request(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<ClientResponse> {
    let addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "empty address"))?;
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;

    let body = body.unwrap_or_default();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    // The server closes after one response, so read to EOF and split.
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    parse_response(&raw)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response"))
}

/// Splits a raw HTTP response into status code and body.
fn parse_response(raw: &str) -> Option<ClientResponse> {
    let (head, body) = raw.split_once("\r\n\r\n")?;
    let status_line = head.lines().next()?;
    let status = status_line.split_whitespace().nth(1)?.parse().ok()?;
    Some(ClientResponse {
        status,
        body: body.to_owned(),
    })
}

/// `GET path`.
///
/// # Errors
///
/// See [`request`].
pub fn get(addr: impl ToSocketAddrs, path: &str) -> std::io::Result<ClientResponse> {
    request(addr, "GET", path, None)
}

/// `POST path` with a body.
///
/// # Errors
///
/// See [`request`].
pub fn post(addr: impl ToSocketAddrs, path: &str, body: &str) -> std::io::Result<ClientResponse> {
    request(addr, "POST", path, Some(body))
}

/// Extracts the `"j<n>"` job name from a job status line (the body of a
/// `POST /jobs` acknowledgement or the first line of `GET /jobs/<id>`).
pub fn job_id(status_line: &str) -> Option<String> {
    let marker = "\"id\":\"";
    let start = status_line.find(marker)? + marker.len();
    let end = status_line[start..].find('"')? + start;
    Some(status_line[start..end].to_owned())
}

/// Polls `GET /jobs/<id>` until its status line reports `"done"`, returning
/// the full final body (status line + result payload).
///
/// # Errors
///
/// Returns `TimedOut` when the deadline passes first, `InvalidData` on a
/// non-200 answer, and any transport error from [`get`].
pub fn poll_job_done(
    addr: impl ToSocketAddrs + Copy,
    id: &str,
    timeout: Duration,
) -> std::io::Result<String> {
    let deadline = std::time::Instant::now() + timeout;
    loop {
        let response = get(addr, &format!("/jobs/{id}"))?;
        if response.status != 200 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "polling {id}: status {} ({})",
                    response.status, response.body
                ),
            ));
        }
        let status_line = response.body.lines().next().unwrap_or_default();
        if status_line.contains("\"state\":\"done\"") {
            return Ok(response.body);
        }
        if std::time::Instant::now() >= deadline {
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                format!("job {id} not done within {timeout:?}"),
            ));
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_status_and_body() {
        let response = parse_response(
            "HTTP/1.1 202 Accepted\r\nContent-Type: application/x-ndjson\r\n\r\n{\"a\":1}\n",
        )
        .unwrap();
        assert_eq!(response.status, 202);
        assert_eq!(response.body, "{\"a\":1}\n");
        assert!(response.is_success());
        assert!(!ClientResponse {
            status: 404,
            body: String::new()
        }
        .is_success());
    }

    #[test]
    fn rejects_malformed_responses() {
        assert!(parse_response("not http").is_none());
        assert!(parse_response("HTTP/1.1\r\n\r\nbody").is_none());
    }

    #[test]
    fn job_id_reads_the_status_line() {
        assert_eq!(
            job_id("{\"type\":\"job\",\"id\":\"j12\",\"state\":\"queued\"}").as_deref(),
            Some("j12")
        );
        assert_eq!(job_id("{\"type\":\"error\"}"), None);
    }
}
