//! Per-endpoint request counters, job/queue gauges, fixed-bucket latency
//! histograms and the `/metrics` text rendering.
//!
//! Everything is a cheap relaxed atomic — recording a request is a handful
//! of uncontended `fetch_add`s (one per counter plus one bucket slot), so
//! instrumentation never shows up next to the actual experiment work. The
//! rendering is the conventional `name{label="value"} N` text format, one
//! line per counter, so CI can assert on it with `grep` and a Prometheus
//! scraper could ingest it as-is.
//!
//! Two histogram families ride on top of the plain counters:
//!
//! * `service_request_duration_us` — per-endpoint wall-clock request
//!   latency over the fixed [`LATENCY_BUCKETS_US`] bounds, with derived
//!   p50/p90/p99 quantile lines (each quantile reports the upper bound of
//!   the bucket the rank falls into — a conservative estimate that never
//!   under-reports).
//! * `service_scenario_sim_cycles` — per-scenario **simulated** cycles per
//!   executed run over [`SIM_CYCLE_BUCKETS`]; wall-clock never leaks into
//!   this family, matching the workspace's cycle-domain telemetry rule.

use runner::pool::PoolStats;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The service endpoints that get their own request counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `GET /` — the endpoint index.
    Index,
    /// `GET /scenarios`.
    Scenarios,
    /// `POST /jobs`.
    JobsPost,
    /// `GET /jobs/<id>`.
    JobsGet,
    /// `GET /results/<key>`.
    Results,
    /// `GET /metrics`.
    Metrics,
    /// `POST /shutdown`.
    Shutdown,
    /// Anything else (unknown paths, unparsable requests).
    Other,
}

impl Endpoint {
    /// Every endpoint, in rendering order.
    pub const ALL: [Endpoint; 8] = [
        Endpoint::Index,
        Endpoint::Scenarios,
        Endpoint::JobsPost,
        Endpoint::JobsGet,
        Endpoint::Results,
        Endpoint::Metrics,
        Endpoint::Shutdown,
        Endpoint::Other,
    ];

    /// The stable label used in the `/metrics` rendering.
    pub fn label(self) -> &'static str {
        match self {
            Endpoint::Index => "index",
            Endpoint::Scenarios => "scenarios",
            Endpoint::JobsPost => "jobs_post",
            Endpoint::JobsGet => "jobs_get",
            Endpoint::Results => "results",
            Endpoint::Metrics => "metrics",
            Endpoint::Shutdown => "shutdown",
            Endpoint::Other => "other",
        }
    }

    fn index(self) -> usize {
        Endpoint::ALL
            .iter()
            .position(|e| *e == self)
            .expect("listed in ALL")
    }
}

/// Upper bounds, in microseconds, of the fixed request-duration buckets.
///
/// The implicit final `+Inf` bucket catches everything slower than the last
/// bound; cumulative rendering follows the Prometheus histogram convention.
pub const LATENCY_BUCKETS_US: [u64; 10] = [
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 50_000, 100_000, 1_000_000,
];

/// Upper bounds, in simulated cycles, of the per-scenario sim-work buckets.
pub const SIM_CYCLE_BUCKETS: [u64; 6] = [
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
];

/// The quantiles derived from each request-duration histogram.
const QUANTILES: [(f64, &str); 3] = [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")];

/// Bucket slots: one per finite bound plus the `+Inf` overflow slot.
const LATENCY_SLOTS: usize = LATENCY_BUCKETS_US.len() + 1;
const SIM_SLOTS: usize = SIM_CYCLE_BUCKETS.len() + 1;

/// Index of the bucket slot a sample falls into (last slot = `+Inf`).
fn bucket_index(bounds: &[u64], sample: u64) -> usize {
    bounds
        .iter()
        .position(|&bound| sample <= bound)
        .unwrap_or(bounds.len())
}

/// The upper bound of the bucket holding rank `ceil(q * total)` — a
/// conservative quantile estimate (the true value is ≤ the reported bound
/// unless the rank lands in the overflow slot, which reports the largest
/// finite bound). Returns 0 when the histogram is empty.
fn bucket_quantile(counts: &[u64], bounds: &[u64], q: f64) -> u64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = ((q * total as f64).ceil() as u64).max(1);
    let mut cumulative = 0u64;
    for (slot, &count) in counts.iter().enumerate() {
        cumulative += count;
        if cumulative >= rank {
            return bounds
                .get(slot)
                .copied()
                .unwrap_or_else(|| *bounds.last().expect("non-empty bounds"));
        }
    }
    *bounds.last().expect("non-empty bounds")
}

/// Request/error/latency counters for one endpoint, plus the fixed-bucket
/// latency histogram slots.
#[derive(Debug, Default)]
struct EndpointCounters {
    requests: AtomicU64,
    errors: AtomicU64,
    latency_us: AtomicU64,
    latency_buckets: [AtomicU64; LATENCY_SLOTS],
}

/// Accumulated simulated work for one scenario: totals plus a fixed-bucket
/// histogram of cycles per executed run.
#[derive(Debug, Default, Clone)]
struct ScenarioSim {
    cycles: u64,
    accesses: u64,
    runs: u64,
    cycle_buckets: [u64; SIM_SLOTS],
}

/// All service counters; one instance lives for the server's lifetime.
#[derive(Debug, Default)]
pub struct Metrics {
    endpoints: [EndpointCounters; 8],
    jobs_submitted: AtomicU64,
    jobs_completed: AtomicU64,
    jobs_errored: AtomicU64,
    queue_depth: AtomicU64,
    queue_peak_depth: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    /// Per-scenario simulated work (cycles, accesses), sourced from the
    /// trace engine's `TraceSummary`s and recorded when a job actually
    /// *runs* a scenario (cache hits simulate nothing).  A `BTreeMap` keeps
    /// the `/metrics` rendering in stable alphabetical order.
    scenario_sim: Mutex<BTreeMap<&'static str, ScenarioSim>>,
}

impl Metrics {
    /// Records one handled request: endpoint, response status and latency.
    pub fn record_request(&self, endpoint: Endpoint, status: u16, latency_us: u64) {
        let counters = &self.endpoints[endpoint.index()];
        counters.requests.fetch_add(1, Ordering::Relaxed);
        counters.latency_us.fetch_add(latency_us, Ordering::Relaxed);
        counters.latency_buckets[bucket_index(&LATENCY_BUCKETS_US, latency_us)]
            .fetch_add(1, Ordering::Relaxed);
        if status >= 400 {
            counters.errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a job entering the queue (depth gauge + peak + submitted).
    pub fn record_job_enqueued(&self) {
        self.jobs_submitted.fetch_add(1, Ordering::Relaxed);
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_peak_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// Records a job finishing (`errored` when ≥1 scenario failed).
    pub fn record_job_finished(&self, errored: bool) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
        self.jobs_completed.fetch_add(1, Ordering::Relaxed);
        if errored {
            self.jobs_errored.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records result-cache lookups for one job.
    pub fn record_cache(&self, hits: u64, misses: u64) {
        self.cache_hits.fetch_add(hits, Ordering::Relaxed);
        self.cache_misses.fetch_add(misses, Ordering::Relaxed);
    }

    /// Records the simulated work one freshly executed scenario performed
    /// (cycles and demand accesses from its aggregated `TraceSummary`s).
    pub fn record_scenario_sim(&self, scenario: &'static str, cycles: u64, accesses: u64) {
        let mut map = self.scenario_sim.lock().expect("sim metrics lock");
        let entry = map.entry(scenario).or_default();
        entry.cycles += cycles;
        entry.accesses += accesses;
        entry.runs += 1;
        entry.cycle_buckets[bucket_index(&SIM_CYCLE_BUCKETS, cycles)] += 1;
    }

    /// Current queue depth (queued + running jobs).
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Renders the `/metrics` snapshot. `cache_entries` and `pool` are
    /// sampled by the caller (they live outside this struct).
    pub fn render(&self, cache_entries: usize, pool: &PoolStats) -> String {
        let mut out = String::with_capacity(2048);
        for endpoint in Endpoint::ALL {
            let counters = &self.endpoints[endpoint.index()];
            let label = endpoint.label();
            out.push_str(&format!(
                "service_http_requests_total{{endpoint=\"{label}\"}} {}\n",
                counters.requests.load(Ordering::Relaxed)
            ));
            out.push_str(&format!(
                "service_http_errors_total{{endpoint=\"{label}\"}} {}\n",
                counters.errors.load(Ordering::Relaxed)
            ));
            out.push_str(&format!(
                "service_http_latency_us_total{{endpoint=\"{label}\"}} {}\n",
                counters.latency_us.load(Ordering::Relaxed)
            ));
            let buckets: Vec<u64> = counters
                .latency_buckets
                .iter()
                .map(|slot| slot.load(Ordering::Relaxed))
                .collect();
            let mut cumulative = 0u64;
            for (slot, &bound) in LATENCY_BUCKETS_US.iter().enumerate() {
                cumulative += buckets[slot];
                out.push_str(&format!(
                    "service_request_duration_us_bucket{{endpoint=\"{label}\",le=\"{bound}\"}} {cumulative}\n"
                ));
            }
            cumulative += buckets[LATENCY_SLOTS - 1];
            out.push_str(&format!(
                "service_request_duration_us_bucket{{endpoint=\"{label}\",le=\"+Inf\"}} {cumulative}\n"
            ));
            out.push_str(&format!(
                "service_request_duration_us_sum{{endpoint=\"{label}\"}} {}\n",
                counters.latency_us.load(Ordering::Relaxed)
            ));
            out.push_str(&format!(
                "service_request_duration_us_count{{endpoint=\"{label}\"}} {cumulative}\n"
            ));
            for (q, q_label) in QUANTILES {
                out.push_str(&format!(
                    "service_request_duration_us_quantile{{endpoint=\"{label}\",quantile=\"{q_label}\"}} {}\n",
                    bucket_quantile(&buckets, &LATENCY_BUCKETS_US, q)
                ));
            }
        }
        let gauge = |name: &str, value: u64| format!("{name} {value}\n");
        out.push_str(&gauge(
            "service_jobs_submitted_total",
            self.jobs_submitted.load(Ordering::Relaxed),
        ));
        out.push_str(&gauge(
            "service_jobs_completed_total",
            self.jobs_completed.load(Ordering::Relaxed),
        ));
        out.push_str(&gauge(
            "service_jobs_errored_total",
            self.jobs_errored.load(Ordering::Relaxed),
        ));
        out.push_str(&gauge("service_job_queue_depth", self.queue_depth()));
        out.push_str(&gauge(
            "service_job_queue_peak_depth",
            self.queue_peak_depth.load(Ordering::Relaxed),
        ));
        out.push_str(&gauge(
            "service_result_cache_hits_total",
            self.cache_hits.load(Ordering::Relaxed),
        ));
        out.push_str(&gauge(
            "service_result_cache_misses_total",
            self.cache_misses.load(Ordering::Relaxed),
        ));
        out.push_str(&gauge("service_result_cache_entries", cache_entries as u64));
        for (scenario, sim) in self.scenario_sim.lock().expect("sim metrics lock").iter() {
            out.push_str(&format!(
                "service_scenario_sim_cycles_total{{scenario=\"{scenario}\"}} {}\n",
                sim.cycles
            ));
            out.push_str(&format!(
                "service_scenario_sim_accesses_total{{scenario=\"{scenario}\"}} {}\n",
                sim.accesses
            ));
            let mut cumulative = 0u64;
            for (slot, &bound) in SIM_CYCLE_BUCKETS.iter().enumerate() {
                cumulative += sim.cycle_buckets[slot];
                out.push_str(&format!(
                    "service_scenario_sim_cycles_bucket{{scenario=\"{scenario}\",le=\"{bound}\"}} {cumulative}\n"
                ));
            }
            cumulative += sim.cycle_buckets[SIM_SLOTS - 1];
            out.push_str(&format!(
                "service_scenario_sim_cycles_bucket{{scenario=\"{scenario}\",le=\"+Inf\"}} {cumulative}\n"
            ));
            out.push_str(&format!(
                "service_scenario_sim_cycles_sum{{scenario=\"{scenario}\"}} {}\n",
                sim.cycles
            ));
            out.push_str(&format!(
                "service_scenario_sim_cycles_count{{scenario=\"{scenario}\"}} {}\n",
                sim.runs
            ));
        }
        out.push_str(&gauge("pool_tasks_queued_total", pool.tasks_queued));
        out.push_str(&gauge("pool_tasks_completed_total", pool.tasks_completed));
        out.push_str(&gauge("pool_tasks_panicked_total", pool.tasks_panicked));
        out.push_str(&gauge("pool_steals_total", pool.steals));
        out.push_str(&gauge("pool_queue_peak_depth", pool.peak_queue_depth));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_counters_split_by_endpoint_and_status() {
        let metrics = Metrics::default();
        metrics.record_request(Endpoint::JobsPost, 202, 120);
        metrics.record_request(Endpoint::JobsPost, 400, 30);
        metrics.record_request(Endpoint::Metrics, 200, 10);
        let text = metrics.render(0, &PoolStats::default());
        assert!(text.contains("service_http_requests_total{endpoint=\"jobs_post\"} 2"));
        assert!(text.contains("service_http_errors_total{endpoint=\"jobs_post\"} 1"));
        assert!(text.contains("service_http_latency_us_total{endpoint=\"jobs_post\"} 150"));
        assert!(text.contains("service_http_requests_total{endpoint=\"metrics\"} 1"));
        assert!(text.contains("service_http_errors_total{endpoint=\"metrics\"} 0"));
    }

    #[test]
    fn request_durations_fill_cumulative_buckets_with_quantiles() {
        let metrics = Metrics::default();
        // 9 fast requests (≤100µs) and one slow outlier (>100ms).
        for _ in 0..9 {
            metrics.record_request(Endpoint::JobsGet, 200, 80);
        }
        metrics.record_request(Endpoint::JobsGet, 200, 200_000);
        let text = metrics.render(0, &PoolStats::default());
        assert!(
            text.contains("service_request_duration_us_bucket{endpoint=\"jobs_get\",le=\"100\"} 9"),
            "{text}"
        );
        // Cumulative: the 100ms bound already includes the fast nine.
        assert!(
            text.contains(
                "service_request_duration_us_bucket{endpoint=\"jobs_get\",le=\"100000\"} 9"
            ),
            "{text}"
        );
        assert!(
            text.contains(
                "service_request_duration_us_bucket{endpoint=\"jobs_get\",le=\"+Inf\"} 10"
            ),
            "{text}"
        );
        assert!(
            text.contains("service_request_duration_us_sum{endpoint=\"jobs_get\"} 200720"),
            "{text}"
        );
        assert!(
            text.contains("service_request_duration_us_count{endpoint=\"jobs_get\"} 10"),
            "{text}"
        );
        // p50 and p90 land in the first bucket; p99 reaches the outlier's.
        assert!(
            text.contains(
                "service_request_duration_us_quantile{endpoint=\"jobs_get\",quantile=\"0.5\"} 100"
            ),
            "{text}"
        );
        assert!(
            text.contains(
                "service_request_duration_us_quantile{endpoint=\"jobs_get\",quantile=\"0.9\"} 100"
            ),
            "{text}"
        );
        assert!(
            text.contains(
                "service_request_duration_us_quantile{endpoint=\"jobs_get\",quantile=\"0.99\"} 1000000"
            ),
            "{text}"
        );
        // Untouched endpoints still render a complete, empty histogram.
        assert!(
            text.contains("service_request_duration_us_bucket{endpoint=\"index\",le=\"+Inf\"} 0"),
            "{text}"
        );
        assert!(
            text.contains(
                "service_request_duration_us_quantile{endpoint=\"index\",quantile=\"0.99\"} 0"
            ),
            "{text}"
        );
    }

    #[test]
    fn scenario_sim_cycles_bucket_per_executed_run() {
        let metrics = Metrics::default();
        metrics.record_scenario_sim("fig6", 5_000, 100);
        metrics.record_scenario_sim("fig6", 50_000, 900);
        metrics.record_scenario_sim("fig6", 2_000_000_000, 10);
        let text = metrics.render(0, &PoolStats::default());
        assert!(
            text.contains("service_scenario_sim_cycles_total{scenario=\"fig6\"} 2000055000"),
            "{text}"
        );
        assert!(
            text.contains("service_scenario_sim_accesses_total{scenario=\"fig6\"} 1010"),
            "{text}"
        );
        assert!(
            text.contains("service_scenario_sim_cycles_bucket{scenario=\"fig6\",le=\"10000\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("service_scenario_sim_cycles_bucket{scenario=\"fig6\",le=\"100000\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("service_scenario_sim_cycles_bucket{scenario=\"fig6\",le=\"+Inf\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("service_scenario_sim_cycles_count{scenario=\"fig6\"} 3"),
            "{text}"
        );
    }

    #[test]
    fn bucket_quantile_is_a_conservative_upper_bound() {
        // All mass in one slot: every quantile reports that slot's bound.
        let mut counts = vec![0u64; LATENCY_BUCKETS_US.len() + 1];
        counts[3] = 7;
        for (q, _) in QUANTILES {
            assert_eq!(bucket_quantile(&counts, &LATENCY_BUCKETS_US, q), 1_000);
        }
        // Mass in the overflow slot clamps to the largest finite bound.
        let mut overflow = vec![0u64; LATENCY_BUCKETS_US.len() + 1];
        overflow[LATENCY_BUCKETS_US.len()] = 2;
        assert_eq!(
            bucket_quantile(&overflow, &LATENCY_BUCKETS_US, 0.5),
            1_000_000
        );
        // Empty histogram: quantiles are zero, not NaN or panic.
        assert_eq!(
            bucket_quantile(
                &vec![0u64; LATENCY_BUCKETS_US.len() + 1],
                &LATENCY_BUCKETS_US,
                0.99
            ),
            0
        );
    }

    #[test]
    fn job_and_cache_counters_track_lifecycle() {
        let metrics = Metrics::default();
        metrics.record_job_enqueued();
        metrics.record_job_enqueued();
        assert_eq!(metrics.queue_depth(), 2);
        metrics.record_job_finished(false);
        metrics.record_job_finished(true);
        metrics.record_cache(1, 3);
        let text = metrics.render(3, &PoolStats::default());
        assert!(text.contains("service_jobs_submitted_total 2"));
        assert!(text.contains("service_jobs_completed_total 2"));
        assert!(text.contains("service_jobs_errored_total 1"));
        assert!(text.contains("service_job_queue_depth 0"));
        assert!(text.contains("service_job_queue_peak_depth 2"));
        assert!(text.contains("service_result_cache_hits_total 1"));
        assert!(text.contains("service_result_cache_misses_total 3"));
        assert!(text.contains("service_result_cache_entries 3"));
    }

    #[test]
    fn pool_stats_appear_in_the_rendering() {
        let metrics = Metrics::default();
        let pool = PoolStats {
            tasks_queued: 10,
            tasks_completed: 9,
            tasks_panicked: 1,
            steals: 4,
            queue_depth: 0,
            peak_queue_depth: 8,
        };
        let text = metrics.render(0, &pool);
        assert!(text.contains("pool_tasks_queued_total 10"));
        assert!(text.contains("pool_tasks_panicked_total 1"));
        assert!(text.contains("pool_steals_total 4"));
        assert!(text.contains("pool_queue_peak_depth 8"));
    }
}
