//! Per-endpoint request counters, job/queue gauges and the `/metrics` text
//! rendering.
//!
//! Everything is a cheap relaxed atomic — recording a request is a handful
//! of uncontended `fetch_add`s, so instrumentation never shows up next to
//! the actual experiment work. The rendering is the conventional
//! `name{label="value"} N` text format, one line per counter, so CI can
//! assert on it with `grep` and a Prometheus scraper could ingest it as-is.

use runner::pool::PoolStats;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The service endpoints that get their own request counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `GET /` — the endpoint index.
    Index,
    /// `GET /scenarios`.
    Scenarios,
    /// `POST /jobs`.
    JobsPost,
    /// `GET /jobs/<id>`.
    JobsGet,
    /// `GET /results/<key>`.
    Results,
    /// `GET /metrics`.
    Metrics,
    /// `POST /shutdown`.
    Shutdown,
    /// Anything else (unknown paths, unparsable requests).
    Other,
}

impl Endpoint {
    /// Every endpoint, in rendering order.
    pub const ALL: [Endpoint; 8] = [
        Endpoint::Index,
        Endpoint::Scenarios,
        Endpoint::JobsPost,
        Endpoint::JobsGet,
        Endpoint::Results,
        Endpoint::Metrics,
        Endpoint::Shutdown,
        Endpoint::Other,
    ];

    /// The stable label used in the `/metrics` rendering.
    pub fn label(self) -> &'static str {
        match self {
            Endpoint::Index => "index",
            Endpoint::Scenarios => "scenarios",
            Endpoint::JobsPost => "jobs_post",
            Endpoint::JobsGet => "jobs_get",
            Endpoint::Results => "results",
            Endpoint::Metrics => "metrics",
            Endpoint::Shutdown => "shutdown",
            Endpoint::Other => "other",
        }
    }

    fn index(self) -> usize {
        Endpoint::ALL
            .iter()
            .position(|e| *e == self)
            .expect("listed in ALL")
    }
}

/// Request/error/latency counters for one endpoint.
#[derive(Debug, Default)]
struct EndpointCounters {
    requests: AtomicU64,
    errors: AtomicU64,
    latency_us: AtomicU64,
}

/// All service counters; one instance lives for the server's lifetime.
#[derive(Debug, Default)]
pub struct Metrics {
    endpoints: [EndpointCounters; 8],
    jobs_submitted: AtomicU64,
    jobs_completed: AtomicU64,
    jobs_errored: AtomicU64,
    queue_depth: AtomicU64,
    queue_peak_depth: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    /// Per-scenario simulated work (cycles, accesses), sourced from the
    /// trace engine's `TraceSummary`s and recorded when a job actually
    /// *runs* a scenario (cache hits simulate nothing).  A `BTreeMap` keeps
    /// the `/metrics` rendering in stable alphabetical order.
    scenario_sim: Mutex<BTreeMap<&'static str, (u64, u64)>>,
}

impl Metrics {
    /// Records one handled request: endpoint, response status and latency.
    pub fn record_request(&self, endpoint: Endpoint, status: u16, latency_us: u64) {
        let counters = &self.endpoints[endpoint.index()];
        counters.requests.fetch_add(1, Ordering::Relaxed);
        counters.latency_us.fetch_add(latency_us, Ordering::Relaxed);
        if status >= 400 {
            counters.errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a job entering the queue (depth gauge + peak + submitted).
    pub fn record_job_enqueued(&self) {
        self.jobs_submitted.fetch_add(1, Ordering::Relaxed);
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_peak_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// Records a job finishing (`errored` when ≥1 scenario failed).
    pub fn record_job_finished(&self, errored: bool) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
        self.jobs_completed.fetch_add(1, Ordering::Relaxed);
        if errored {
            self.jobs_errored.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records result-cache lookups for one job.
    pub fn record_cache(&self, hits: u64, misses: u64) {
        self.cache_hits.fetch_add(hits, Ordering::Relaxed);
        self.cache_misses.fetch_add(misses, Ordering::Relaxed);
    }

    /// Records the simulated work one freshly executed scenario performed
    /// (cycles and demand accesses from its aggregated `TraceSummary`s).
    pub fn record_scenario_sim(&self, scenario: &'static str, cycles: u64, accesses: u64) {
        let mut map = self.scenario_sim.lock().expect("sim metrics lock");
        let entry = map.entry(scenario).or_insert((0, 0));
        entry.0 += cycles;
        entry.1 += accesses;
    }

    /// Current queue depth (queued + running jobs).
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Renders the `/metrics` snapshot. `cache_entries` and `pool` are
    /// sampled by the caller (they live outside this struct).
    pub fn render(&self, cache_entries: usize, pool: &PoolStats) -> String {
        let mut out = String::with_capacity(2048);
        for endpoint in Endpoint::ALL {
            let counters = &self.endpoints[endpoint.index()];
            let label = endpoint.label();
            out.push_str(&format!(
                "service_http_requests_total{{endpoint=\"{label}\"}} {}\n",
                counters.requests.load(Ordering::Relaxed)
            ));
            out.push_str(&format!(
                "service_http_errors_total{{endpoint=\"{label}\"}} {}\n",
                counters.errors.load(Ordering::Relaxed)
            ));
            out.push_str(&format!(
                "service_http_latency_us_total{{endpoint=\"{label}\"}} {}\n",
                counters.latency_us.load(Ordering::Relaxed)
            ));
        }
        let gauge = |name: &str, value: u64| format!("{name} {value}\n");
        out.push_str(&gauge(
            "service_jobs_submitted_total",
            self.jobs_submitted.load(Ordering::Relaxed),
        ));
        out.push_str(&gauge(
            "service_jobs_completed_total",
            self.jobs_completed.load(Ordering::Relaxed),
        ));
        out.push_str(&gauge(
            "service_jobs_errored_total",
            self.jobs_errored.load(Ordering::Relaxed),
        ));
        out.push_str(&gauge("service_job_queue_depth", self.queue_depth()));
        out.push_str(&gauge(
            "service_job_queue_peak_depth",
            self.queue_peak_depth.load(Ordering::Relaxed),
        ));
        out.push_str(&gauge(
            "service_result_cache_hits_total",
            self.cache_hits.load(Ordering::Relaxed),
        ));
        out.push_str(&gauge(
            "service_result_cache_misses_total",
            self.cache_misses.load(Ordering::Relaxed),
        ));
        out.push_str(&gauge("service_result_cache_entries", cache_entries as u64));
        for (scenario, (cycles, accesses)) in
            self.scenario_sim.lock().expect("sim metrics lock").iter()
        {
            out.push_str(&format!(
                "service_scenario_sim_cycles_total{{scenario=\"{scenario}\"}} {cycles}\n"
            ));
            out.push_str(&format!(
                "service_scenario_sim_accesses_total{{scenario=\"{scenario}\"}} {accesses}\n"
            ));
        }
        out.push_str(&gauge("pool_tasks_queued_total", pool.tasks_queued));
        out.push_str(&gauge("pool_tasks_completed_total", pool.tasks_completed));
        out.push_str(&gauge("pool_tasks_panicked_total", pool.tasks_panicked));
        out.push_str(&gauge("pool_steals_total", pool.steals));
        out.push_str(&gauge("pool_queue_peak_depth", pool.peak_queue_depth));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_counters_split_by_endpoint_and_status() {
        let metrics = Metrics::default();
        metrics.record_request(Endpoint::JobsPost, 202, 120);
        metrics.record_request(Endpoint::JobsPost, 400, 30);
        metrics.record_request(Endpoint::Metrics, 200, 10);
        let text = metrics.render(0, &PoolStats::default());
        assert!(text.contains("service_http_requests_total{endpoint=\"jobs_post\"} 2"));
        assert!(text.contains("service_http_errors_total{endpoint=\"jobs_post\"} 1"));
        assert!(text.contains("service_http_latency_us_total{endpoint=\"jobs_post\"} 150"));
        assert!(text.contains("service_http_requests_total{endpoint=\"metrics\"} 1"));
        assert!(text.contains("service_http_errors_total{endpoint=\"metrics\"} 0"));
    }

    #[test]
    fn job_and_cache_counters_track_lifecycle() {
        let metrics = Metrics::default();
        metrics.record_job_enqueued();
        metrics.record_job_enqueued();
        assert_eq!(metrics.queue_depth(), 2);
        metrics.record_job_finished(false);
        metrics.record_job_finished(true);
        metrics.record_cache(1, 3);
        let text = metrics.render(3, &PoolStats::default());
        assert!(text.contains("service_jobs_submitted_total 2"));
        assert!(text.contains("service_jobs_completed_total 2"));
        assert!(text.contains("service_jobs_errored_total 1"));
        assert!(text.contains("service_job_queue_depth 0"));
        assert!(text.contains("service_job_queue_peak_depth 2"));
        assert!(text.contains("service_result_cache_hits_total 1"));
        assert!(text.contains("service_result_cache_misses_total 3"));
        assert!(text.contains("service_result_cache_entries 3"));
    }

    #[test]
    fn pool_stats_appear_in_the_rendering() {
        let metrics = Metrics::default();
        let pool = PoolStats {
            tasks_queued: 10,
            tasks_completed: 9,
            tasks_panicked: 1,
            steals: 4,
            queue_depth: 0,
            peak_queue_depth: 8,
        };
        let text = metrics.render(0, &pool);
        assert!(text.contains("pool_tasks_queued_total 10"));
        assert!(text.contains("pool_tasks_panicked_total 1"));
        assert!(text.contains("pool_steals_total 4"));
        assert!(text.contains("pool_queue_peak_depth 8"));
    }
}
