//! End-to-end tests of the experiment service over real sockets.
//!
//! Each test binds its own server on an ephemeral port with a synthetic
//! scenario registry (an instant `echo` sweep, an always-failing `boom`,
//! and a gate-controlled `slow` whose release the test holds), drives it
//! through the `service::client` module, and shuts it down.

use runner::scenario::{PointCtx, PointOutput, Scenario, Seeding};
use runner::{Registry, Scale};
use service::{client, Server, ServerConfig};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

fn three(_: Scale) -> usize {
    3
}

fn one(_: Scale) -> usize {
    1
}

fn echo_point(ctx: &PointCtx) -> Result<PointOutput, String> {
    Ok(PointOutput::row([
        ctx.index.to_string(),
        format!("{:#018x}", ctx.seed),
    ]))
}

fn echo_assemble(_: Scale, outputs: &[PointOutput]) -> Vec<(String, analysis::table::Table)> {
    let mut table = analysis::table::Table::new("echo", &["index", "seed"]);
    for output in outputs {
        table.extend_rows(output.rows.iter().cloned());
    }
    vec![("echo".to_owned(), table)]
}

fn boom_point(_: &PointCtx) -> Result<PointOutput, String> {
    Err("deliberate failure".to_owned())
}

fn empty_assemble(_: Scale, _: &[PointOutput]) -> Vec<(String, analysis::table::Table)> {
    Vec::new()
}

fn panicking_assemble(_: Scale, _: &[PointOutput]) -> Vec<(String, analysis::table::Table)> {
    panic!("assemble blew up");
}

static SLOW_STARTED: AtomicBool = AtomicBool::new(false);
static SLOW_RELEASE: AtomicBool = AtomicBool::new(false);
static SLOW_DONE: AtomicBool = AtomicBool::new(false);

fn slow_point(_: &PointCtx) -> Result<PointOutput, String> {
    SLOW_STARTED.store(true, Ordering::SeqCst);
    let start = Instant::now();
    while !SLOW_RELEASE.load(Ordering::SeqCst) {
        if start.elapsed() > Duration::from_secs(30) {
            return Err("test gate never released".to_owned());
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    SLOW_DONE.store(true, Ordering::SeqCst);
    Ok(PointOutput::row(["finished"]))
}

fn slow_assemble(_: Scale, outputs: &[PointOutput]) -> Vec<(String, analysis::table::Table)> {
    let mut table = analysis::table::Table::new("slow", &["state"]);
    for output in outputs {
        table.extend_rows(output.rows.iter().cloned());
    }
    vec![("slow".to_owned(), table)]
}

fn scenario(
    id: &'static str,
    points: fn(Scale) -> usize,
    run_point: runner::scenario::PointFn,
    assemble: runner::scenario::AssembleFn,
) -> Scenario {
    Scenario {
        id,
        paper_ref: "Test",
        section: "Test",
        summary: "synthetic test scenario",
        seeding: Seeding::Derived,
        points,
        run_point,
        run_batch: None,
        assemble,
    }
}

fn test_registry() -> Registry {
    let mut registry = Registry::new();
    registry.register(scenario("echo", three, echo_point, echo_assemble));
    registry.register(scenario("boom", one, boom_point, empty_assemble));
    registry.register(scenario("slow", one, slow_point, slow_assemble));
    registry.register(scenario("asm-boom", one, echo_point, panicking_assemble));
    registry
}

/// Binds a server on an ephemeral port and serves it on a thread.
fn start(cache_dir: Option<PathBuf>) -> (SocketAddr, std::thread::JoinHandle<std::io::Result<()>>) {
    start_with(|config| config.cache_dir = cache_dir)
}

/// [`start`] with full control over the configuration.
fn start_with(
    tweak: impl FnOnce(&mut ServerConfig),
) -> (SocketAddr, std::thread::JoinHandle<std::io::Result<()>>) {
    let mut config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        job_workers: 2,
        max_job_threads: 2,
        cache_dir: None,
        default_seed: 7,
        ..ServerConfig::default()
    };
    tweak(&mut config);
    let server = Server::bind(test_registry(), config).expect("bind");
    let addr = server.local_addr().expect("bound address");
    let handle = std::thread::spawn(move || server.serve());
    (addr, handle)
}

/// The `"j<n>"` id out of a `POST /jobs` acknowledgement.
fn job_id(ack: &str) -> String {
    client::job_id(ack).expect("ack carries an id")
}

/// Polls `GET /jobs/<id>` until the status line says `done`.
fn poll_done(addr: SocketAddr, id: &str) -> String {
    client::poll_job_done(addr, id, Duration::from_secs(30)).expect("job completes")
}

/// Everything after the job-specific status line: the result payload that
/// must be byte-identical across identical submissions.
fn result_payload(body: &str) -> &str {
    body.split_once('\n').expect("status line then payload").1
}

#[test]
fn identical_jobs_hit_the_cache_and_return_identical_bytes() {
    let (addr, server) = start(None);

    // The registry is visible.
    let scenarios = client::get(addr, "/scenarios").unwrap();
    assert_eq!(scenarios.status, 200);
    assert!(
        scenarios.body.contains("\"id\":\"echo\""),
        "{}",
        scenarios.body
    );

    // First submission: a miss that runs the sweep.
    let spec = "{\"scenarios\":\"echo\",\"scale\":\"quick\",\"seed\":7,\"threads\":2}";
    let first_ack = client::post(addr, "/jobs", spec).unwrap();
    assert_eq!(first_ack.status, 202, "{}", first_ack.body);
    let first = poll_done(addr, &job_id(&first_ack.body));
    let first_status = first.lines().next().unwrap();
    assert!(first_status.contains("\"cache_hits\":0"), "{first_status}");
    assert!(
        first_status.contains("\"cache_misses\":1"),
        "{first_status}"
    );
    assert!(first.contains("\"type\":\"row\""));

    // Second, identical submission: served from the cache…
    let second_ack = client::post(addr, "/jobs", spec).unwrap();
    let second = poll_done(addr, &job_id(&second_ack.body));
    let second_status = second.lines().next().unwrap();
    assert!(
        second_status.contains("\"cache_hits\":1"),
        "{second_status}"
    );
    assert!(
        second_status.contains("\"cache_misses\":0"),
        "{second_status}"
    );

    // …and byte-identical to the first, past the job-specific status line.
    assert_eq!(result_payload(&first), result_payload(&second));
    assert!(!result_payload(&first).is_empty());

    // The content-addressed body is directly fetchable, twice the same.
    let key = "echo-quick-0x0000000000000007";
    let direct_one = client::get(addr, &format!("/results/{key}")).unwrap();
    let direct_two = client::get(addr, &format!("/results/{key}")).unwrap();
    assert_eq!(direct_one.status, 200);
    assert_eq!(direct_one.body, direct_two.body);
    assert_eq!(direct_one.body, result_payload(&first));

    // The cache hit is visible in the metrics.
    let metrics = client::get(addr, "/metrics").unwrap().body;
    assert!(
        metrics.contains("service_result_cache_hits_total 1"),
        "{metrics}"
    );
    assert!(
        metrics.contains("service_result_cache_misses_total 1"),
        "{metrics}"
    );
    assert!(
        metrics.contains("service_result_cache_entries 1"),
        "{metrics}"
    );
    assert!(
        metrics.contains("service_jobs_completed_total 2"),
        "{metrics}"
    );
    assert!(
        metrics.contains("service_http_requests_total{endpoint=\"jobs_post\"} 2"),
        "{metrics}"
    );
    assert!(metrics.contains("pool_tasks_queued_total"), "{metrics}");

    // Request latencies render as cumulative fixed-bucket histograms with
    // derived quantiles: both POSTs are accounted for under +Inf, and the
    // percentile lines are present for every endpoint.
    assert!(
        metrics
            .contains("service_request_duration_us_bucket{endpoint=\"jobs_post\",le=\"+Inf\"} 2"),
        "{metrics}"
    );
    assert!(
        metrics.contains("service_request_duration_us_count{endpoint=\"jobs_post\"} 2"),
        "{metrics}"
    );
    for quantile in ["0.5", "0.9", "0.99"] {
        assert!(
            metrics.contains(&format!(
                "service_request_duration_us_quantile{{endpoint=\"jobs_post\",quantile=\"{quantile}\"}}"
            )),
            "{metrics}"
        );
    }
    // The executed (non-cached) run contributes one sample to the echo
    // scenario's sim-cycle histogram.
    assert!(
        metrics.contains("service_scenario_sim_cycles_bucket{scenario=\"echo\",le=\"+Inf\"} 1"),
        "{metrics}"
    );
    assert!(
        metrics.contains("service_scenario_sim_cycles_count{scenario=\"echo\"} 1"),
        "{metrics}"
    );

    client::post(addr, "/shutdown", "").unwrap();
    server.join().unwrap().unwrap();
}

#[test]
fn scenario_errors_are_reported_per_result_and_not_cached() {
    let (addr, server) = start(None);
    let ack = client::post(
        addr,
        "/jobs",
        "{\"scenarios\":[\"echo\",\"boom\"],\"seed\":9}",
    )
    .unwrap();
    assert_eq!(ack.status, 202, "{}", ack.body);
    let body = poll_done(addr, &job_id(&ack.body));
    let status_line = body.lines().next().unwrap();
    assert!(status_line.contains("\"errors\":1"), "{status_line}");
    assert!(body.contains("\"scenario\":\"boom\""));
    assert!(body.contains("\"status\":\"error\""));
    assert!(body.contains("deliberate failure"));
    // The failed scenario is not cached; the successful one is.
    let missing = client::get(addr, "/results/boom-quick-0x0000000000000009").unwrap();
    assert_eq!(missing.status, 404);
    let cached = client::get(addr, "/results/echo-quick-0x0000000000000009").unwrap();
    assert_eq!(cached.status, 200);
    let metrics = client::get(addr, "/metrics").unwrap().body;
    assert!(
        metrics.contains("service_jobs_errored_total 1"),
        "{metrics}"
    );
    client::post(addr, "/shutdown", "").unwrap();
    server.join().unwrap().unwrap();
}

#[test]
fn malformed_requests_get_4xx_answers() {
    let (addr, server) = start(None);
    assert_eq!(client::get(addr, "/nope").unwrap().status, 404);
    assert_eq!(client::get(addr, "/jobs/j999").unwrap().status, 404);
    assert_eq!(client::get(addr, "/jobs/zzz").unwrap().status, 400);
    assert_eq!(
        client::get(addr, "/results/unknown-key").unwrap().status,
        404
    );
    // Traversal-shaped keys are rejected before touching any filesystem.
    assert_eq!(
        client::get(addr, "/results/../../etc/passwd")
            .unwrap()
            .status,
        404
    );
    assert_eq!(
        client::request(addr, "DELETE", "/jobs", None)
            .unwrap()
            .status,
        405
    );
    let bad_json = client::post(addr, "/jobs", "{not json").unwrap();
    assert_eq!(bad_json.status, 400);
    let no_scenarios = client::post(addr, "/jobs", "{}").unwrap();
    assert_eq!(no_scenarios.status, 400);
    assert!(no_scenarios.body.contains("scenarios"));
    let unknown = client::post(addr, "/jobs", "{\"scenarios\":\"zzz*\"}").unwrap();
    assert_eq!(unknown.status, 400);
    assert!(unknown.body.contains("no scenario matches"));
    let index = client::get(addr, "/").unwrap();
    assert!(index.body.contains("POST /jobs"));
    // The error traffic is counted.
    let metrics = client::get(addr, "/metrics").unwrap().body;
    assert!(
        metrics.contains("service_http_errors_total{endpoint=\"jobs_post\"} 3"),
        "{metrics}"
    );
    client::post(addr, "/shutdown", "").unwrap();
    server.join().unwrap().unwrap();
}

#[test]
fn an_assemble_panic_fails_the_job_but_not_the_worker_or_shutdown() {
    let (addr, server) = start(None);
    // The executor catches run_point panics, but `assemble` runs raw on the
    // job-worker thread: this job's panic must become a job error…
    let ack = client::post(addr, "/jobs", "{\"scenarios\":\"asm-boom\"}").unwrap();
    assert_eq!(ack.status, 202, "{}", ack.body);
    let body = poll_done(addr, &job_id(&ack.body));
    assert!(
        body.lines().next().unwrap().contains("\"errors\":1"),
        "{body}"
    );
    // …while the worker survives to run the next job…
    let ack = client::post(addr, "/jobs", "{\"scenarios\":\"echo\"}").unwrap();
    let body = poll_done(addr, &job_id(&ack.body));
    assert!(body.contains("\"type\":\"row\""), "{body}");
    // A mixed job where only one scenario's assemble panics still serves
    // the already-cached scenario's body and blames only the missing one.
    let ack = client::post(addr, "/jobs", "{\"scenarios\":[\"echo\",\"asm-boom\"]}").unwrap();
    let body = poll_done(addr, &job_id(&ack.body));
    assert!(
        body.lines().next().unwrap().contains("\"errors\":1"),
        "{body}"
    );
    assert!(body.contains("\"type\":\"row\""), "{body}");
    let metrics = client::get(addr, "/metrics").unwrap().body;
    assert!(
        metrics.contains("service_jobs_completed_total 3"),
        "{metrics}"
    );
    // …and shutdown still drains to a clean exit (nothing leaked `running`).
    client::post(addr, "/shutdown", "").unwrap();
    server.join().unwrap().unwrap();
}

#[test]
fn finished_jobs_are_evicted_beyond_the_history_bound() {
    let (addr, server) = start_with(|config| config.job_history = 1);
    let spec = "{\"scenarios\":\"echo\",\"seed\":21}";
    let first = job_id(&client::post(addr, "/jobs", spec).unwrap().body);
    poll_done(addr, &first);
    let second = job_id(&client::post(addr, "/jobs", spec).unwrap().body);
    poll_done(addr, &second);
    // The oldest finished record is gone, the newest remains, and the
    // *result* outlives both in the content-addressed cache.
    assert_eq!(
        client::get(addr, &format!("/jobs/{first}")).unwrap().status,
        404
    );
    assert_eq!(
        client::get(addr, &format!("/jobs/{second}"))
            .unwrap()
            .status,
        200
    );
    let cached = client::get(addr, "/results/echo-quick-0x0000000000000015").unwrap();
    assert_eq!(cached.status, 200);
    client::post(addr, "/shutdown", "").unwrap();
    server.join().unwrap().unwrap();
}

#[test]
fn a_silent_connection_does_not_stall_other_clients() {
    let (addr, server) = start(None);
    // A client that connects and never sends a byte holds its handler
    // thread until the read timeout — other requests must not queue
    // behind it.
    let _silent = std::net::TcpStream::connect(addr).unwrap();
    let started = Instant::now();
    let index = client::get(addr, "/").unwrap();
    assert_eq!(index.status, 200);
    assert!(
        started.elapsed() < Duration::from_secs(4),
        "request queued behind a silent connection ({:?})",
        started.elapsed()
    );
    client::post(addr, "/shutdown", "").unwrap();
    server.join().unwrap().unwrap();
}

#[test]
fn graceful_shutdown_completes_the_in_flight_job_before_exit() {
    let cache_dir =
        std::env::temp_dir().join(format!("service-e2e-shutdown-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let (addr, server) = start(Some(cache_dir.clone()));

    // Occupy a worker with the gated job and wait until it is truly
    // in flight (not just queued).
    let ack = client::post(addr, "/jobs", "{\"scenarios\":\"slow\"}").unwrap();
    assert_eq!(ack.status, 202, "{}", ack.body);
    let id = job_id(&ack.body);
    let deadline = Instant::now() + Duration::from_secs(30);
    while !SLOW_STARTED.load(Ordering::SeqCst) {
        assert!(Instant::now() < deadline, "slow job never started");
        std::thread::sleep(Duration::from_millis(2));
    }

    // Shutdown: acknowledged immediately, new jobs refused, reads still
    // served while the queue drains.
    let shutdown = client::post(addr, "/shutdown", "").unwrap();
    assert_eq!(shutdown.status, 200);
    assert!(shutdown.body.contains("\"state\":\"draining\""));
    let refused = client::post(addr, "/jobs", "{\"scenarios\":\"echo\"}").unwrap();
    assert_eq!(refused.status, 503, "{}", refused.body);
    let status = client::get(addr, &format!("/jobs/{id}")).unwrap();
    assert!(
        status
            .body
            .lines()
            .next()
            .unwrap()
            .contains("\"state\":\"running\""),
        "{}",
        status.body
    );
    assert!(!SLOW_DONE.load(Ordering::SeqCst));

    // Release the gate: the server must finish the job, persist its
    // result, and only then let `serve` return.
    SLOW_RELEASE.store(true, Ordering::SeqCst);
    server.join().unwrap().unwrap();
    assert!(
        SLOW_DONE.load(Ordering::SeqCst),
        "job was dropped on shutdown"
    );
    assert!(
        cache_dir
            .join("slow-quick-0x0000000000000007.ndjson")
            .exists(),
        "drained job's result was not persisted"
    );
    std::fs::remove_dir_all(&cache_dir).unwrap();
}
