//! Runs selected scenarios on the work-stealing pool.
//!
//! All sweep points of all selected scenarios are flattened into one task
//! list (seeds pre-derived), fanned out across the pool, then grouped back
//! per scenario and assembled **in point order** — so the output is
//! bit-identical at any thread count, while a wide sweep like Figure 6
//! saturates every core instead of running its grid serially.
//!
//! Scenarios that provide a [`crate::scenario::BatchFn`] additionally have
//! their points chunked into *lane batches* of [`RunConfig::lanes`]
//! contiguous points: one task executes the whole chunk on a lane bank,
//! amortising session dispatch across the batch.  Because `run_batch` is
//! contractually bit-identical to mapping `run_point`, results are
//! invariant in the lane width exactly as they are in the thread count.

use crate::pool::run_ordered_catch;
use crate::scale::Scale;
use crate::scenario::{PointCtx, PointOutput, Scenario, PHASE_COUNT};
use analysis::table::Table;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

/// Configuration of one `repro run` invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunConfig {
    /// Experiment scale.
    pub scale: Scale,
    /// Worker threads (`1` runs everything inline on the caller).
    pub threads: usize,
    /// Root seed all derived scenario/point seeds descend from.
    pub root_seed: u64,
    /// Lane width for scenarios that support batched execution
    /// (`run_batch`): `0` resolves to [`AUTO_LANES`], `1` disables
    /// batching, `k > 1` groups up to `k` contiguous points per task.
    pub lanes: usize,
    /// Emit structured progress lines on stderr.
    pub progress: bool,
}

/// The lane width `RunConfig { lanes: 0, .. }` (auto) resolves to.
pub const AUTO_LANES: usize = 4;

impl RunConfig {
    /// The lane width this run actually uses (auto resolved).
    pub fn effective_lanes(&self) -> usize {
        match self.lanes {
            0 => AUTO_LANES,
            lanes => lanes,
        }
    }
}

/// The outcome of one scenario within a run.
#[derive(Debug, Clone)]
pub struct ScenarioRun {
    /// Scenario id.
    pub id: &'static str,
    /// Paper cross-reference (e.g. `"Table II"`).
    pub paper_ref: &'static str,
    /// Scale the scenario ran at.
    pub scale: Scale,
    /// The scenario-level seed recorded in the manifest.
    pub seed: u64,
    /// Number of sweep points that ran.
    pub points: usize,
    /// Lane width the scenario's points were batched at (`1` when the
    /// scenario has no batch path or batching is disabled).
    pub lanes: usize,
    /// Wall time from the first point starting to the last point finishing.
    ///
    /// The only non-deterministic field of a run: everything else is a pure
    /// function of `(root seed, scale)`.
    pub wall_ms: f64,
    /// `(output stem, table)` pairs, primary table first. Empty on error.
    pub tables: Vec<(String, Table)>,
    /// The first point error, if any point failed.
    pub error: Option<String>,
    /// Simulated cycles summed over the scenario's points (zero for
    /// uninstrumented scenarios).
    pub sim_cycles: u64,
    /// Simulated demand accesses summed over the scenario's points.
    pub sim_accesses: u64,
    /// Per-phase simulated cycles summed over the scenario's points, in
    /// [`crate::scenario::PHASE_LABELS`] order.
    pub phase_cycles: [u64; PHASE_COUNT],
}

/// One task's result: timing plus the point outcome.
struct PointRun {
    started_ms: f64,
    finished_ms: f64,
    output: Result<PointOutput, String>,
}

/// Executes `scenarios` under `config` and returns one [`ScenarioRun`] per
/// scenario, in the given order.
pub fn execute(scenarios: &[&Scenario], config: &RunConfig) -> Vec<ScenarioRun> {
    let epoch = Instant::now();
    let point_counts: Vec<usize> = scenarios.iter().map(|s| (s.points)(config.scale)).collect();
    let remaining: Vec<AtomicUsize> = point_counts.iter().map(|&n| AtomicUsize::new(n)).collect();
    let announced: Vec<AtomicBool> = scenarios.iter().map(|_| AtomicBool::new(false)).collect();

    // Flatten every (scenario, lane chunk) into one task list, seeds
    // pre-derived.  Scenarios without a batch path (or at lane width 1) get
    // one single-point chunk per point, which reproduces the historical
    // per-point task list exactly.
    let lane_width = config.effective_lanes();
    let mut tasks: Vec<Box<dyn FnOnce() -> Vec<PointRun> + Send + '_>> = Vec::new();
    // Per task: `(scenario index, first point index, chunk length)` — needed
    // to expand a panicked task back into its per-point error slots.
    let mut chunks: Vec<(usize, usize, usize)> = Vec::new();
    let mut scenario_lanes: Vec<usize> = Vec::with_capacity(scenarios.len());
    for (si, scenario) in scenarios.iter().enumerate() {
        let width = if scenario.run_batch.is_some() {
            lane_width
        } else {
            1
        };
        scenario_lanes.push(width);
        let points = point_counts[si];
        let mut start = 0;
        while start < points {
            let chunk_len = width.min(points - start);
            let ctxs: Vec<PointCtx> = (start..start + chunk_len)
                .map(|index| PointCtx {
                    scale: config.scale,
                    seed: scenario.point_seed(config.root_seed, index),
                    index,
                })
                .collect();
            chunks.push((si, start, chunk_len));
            let scenario = **scenario;
            let remaining = &remaining;
            let announced = &announced;
            let root_seed = config.root_seed;
            let scale = config.scale;
            let progress = config.progress;
            tasks.push(Box::new(move || {
                // Announce the scenario when its first point actually starts
                // executing, not when it was queued.
                if progress && !announced[si].swap(true, Ordering::AcqRel) {
                    // Operator-facing progress, opt-in via `config.progress`
                    // and never part of results: lint:allow(println-in-lib)
                    eprintln!(
                        "[repro] run {} ({}) points={} seed={:#018x} scale={}{}",
                        scenario.id,
                        scenario.paper_ref,
                        points,
                        scenario.manifest_seed(root_seed),
                        scale.label(),
                        if width > 1 {
                            format!(" lanes={width}")
                        } else {
                            String::new()
                        },
                    );
                }
                let started_ms = epoch.elapsed().as_secs_f64() * 1e3;
                let mut outputs: Vec<Result<PointOutput, String>> = match scenario.run_batch {
                    // One-point chunks always take the serial path, so a
                    // `--lanes 1` run never enters a scenario's batch code.
                    Some(run_batch) if ctxs.len() > 1 => run_batch(&ctxs),
                    _ => ctxs.iter().map(|ctx| (scenario.run_point)(ctx)).collect(),
                };
                if outputs.len() != ctxs.len() {
                    let message = format!(
                        "run_batch returned {} outputs for {} points",
                        outputs.len(),
                        ctxs.len()
                    );
                    outputs = ctxs.iter().map(|_| Err(message.clone())).collect();
                }
                let finished_ms = epoch.elapsed().as_secs_f64() * 1e3;
                let chunk_len = ctxs.len();
                if remaining[si].fetch_sub(chunk_len, Ordering::AcqRel) == chunk_len && progress {
                    // lint:allow(println-in-lib) opt-in progress line
                    eprintln!("[repro] done {}", scenario.id);
                }
                outputs
                    .into_iter()
                    .map(|output| PointRun {
                        started_ms,
                        finished_ms,
                        output,
                    })
                    .collect()
            }));
            start += chunk_len;
        }
    }

    // One panic mechanism for the whole stack: the pool catches a panicking
    // chunk (`run_ordered_catch`), counts it in `PoolStats::tasks_panicked`,
    // keeps draining, and hands back the message as the slot's `Err` — here
    // it becomes every chunk point's error. (A panicked chunk skips its
    // progress accounting above, so a scenario whose last chunk panics may
    // not print its "done" line; the manifest still records the error.)
    let mut results = run_ordered_catch(config.threads, tasks)
        .into_iter()
        .zip(chunks);

    // Group the flat results back per scenario (submission order is grouped
    // by scenario, so each scenario owns a contiguous chunk run) and
    // assemble.
    let mut runs = Vec::with_capacity(scenarios.len());
    for (si, scenario) in scenarios.iter().enumerate() {
        let mut group: Vec<PointRun> = Vec::with_capacity(point_counts[si]);
        while group.len() < point_counts[si] {
            let (slot, (chunk_si, chunk_start, chunk_len)) =
                results.next().expect("one task result per submitted chunk");
            debug_assert_eq!(chunk_si, si, "chunk results arrive in submission order");
            match slot {
                Ok(points) => group.extend(points),
                Err(message) => {
                    group.extend(
                        (chunk_start..chunk_start + chunk_len).map(|index| PointRun {
                            // Neutral elements of the min/max wall-time folds: a
                            // panicked point contributes no timing.
                            started_ms: f64::MAX,
                            finished_ms: 0.0,
                            output: Err(format!("point {index} panicked: {message}")),
                        }),
                    )
                }
            }
        }
        let started = group.iter().map(|p| p.started_ms).fold(f64::MAX, f64::min);
        let finished = group.iter().map(|p| p.finished_ms).fold(0.0, f64::max);
        let wall_ms = if group.is_empty() {
            0.0
        } else {
            // Clamp for the all-points-panicked case, where only the
            // neutral timing elements are left.
            (finished - started).max(0.0)
        };
        let error = group.iter().find_map(|p| p.output.as_ref().err()).cloned();
        let (tables, sim_cycles, sim_accesses, phase_cycles) = if error.is_some() {
            (Vec::new(), 0, 0, [0u64; PHASE_COUNT])
        } else {
            let outputs: Vec<PointOutput> = group
                .into_iter()
                .map(|p| p.output.expect("checked error above"))
                .collect();
            let sim_cycles = outputs.iter().map(|o| o.sim_cycles).sum();
            let sim_accesses = outputs.iter().map(|o| o.sim_accesses).sum();
            let mut phase_cycles = [0u64; PHASE_COUNT];
            for output in &outputs {
                for (slot, &cycles) in phase_cycles.iter_mut().zip(&output.phase_cycles) {
                    *slot += cycles;
                }
            }
            (
                (scenario.assemble)(config.scale, &outputs),
                sim_cycles,
                sim_accesses,
                phase_cycles,
            )
        };
        runs.push(ScenarioRun {
            id: scenario.id,
            paper_ref: scenario.paper_ref,
            scale: config.scale,
            seed: scenario.manifest_seed(config.root_seed),
            points: point_counts[si],
            lanes: scenario_lanes[si],
            wall_ms,
            tables,
            error,
            sim_cycles,
            sim_accesses,
            phase_cycles,
        });
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Seeding;
    use analysis::table::Table;

    fn seed_echo_scenario() -> Scenario {
        fn points(scale: Scale) -> usize {
            match scale {
                Scale::Quick => 4,
                Scale::Full => 8,
            }
        }
        fn run(ctx: &PointCtx) -> Result<PointOutput, String> {
            Ok(PointOutput::row([
                ctx.index.to_string(),
                format!("{:#x}", ctx.seed),
            ]))
        }
        fn assemble(_: Scale, outputs: &[PointOutput]) -> Vec<(String, Table)> {
            let mut table = Table::new("echo", &["index", "seed"]);
            for output in outputs {
                for row in &output.rows {
                    table.push_row(row.clone());
                }
            }
            vec![("echo".to_owned(), table)]
        }
        Scenario {
            id: "echo",
            paper_ref: "Table 0",
            section: "Sec. 0",
            summary: "echoes point seeds",
            seeding: Seeding::Derived,
            points,
            run_point: run,
            run_batch: None,
            assemble,
        }
    }

    #[test]
    fn execute_is_thread_count_invariant() {
        let scenario = seed_echo_scenario();
        let scenarios = [&scenario];
        let run_at = |threads: usize| {
            let config = RunConfig {
                scale: Scale::Quick,
                threads,
                root_seed: 2022,
                lanes: 1,
                progress: false,
            };
            execute(&scenarios, &config)
                .remove(0)
                .tables
                .remove(0)
                .1
                .to_json()
        };
        let single = run_at(1);
        assert_eq!(single, run_at(8));
        assert_eq!(single, run_at(3));
    }

    #[test]
    fn empty_selection_reports_zero_wall_time() {
        // A scenario with zero points (or an empty selection) must report
        // wall_ms == 0.0, not the degenerate f64::MAX - 0.0 the min/max
        // folds would produce without the empty-group guard.
        fn none(_: Scale) -> usize {
            0
        }
        fn run(_: &PointCtx) -> Result<PointOutput, String> {
            unreachable!("a zero-point scenario must never run a point")
        }
        fn assemble(_: Scale, outputs: &[PointOutput]) -> Vec<(String, Table)> {
            assert!(outputs.is_empty());
            vec![("empty".to_owned(), Table::new("empty", &["c"]))]
        }
        let empty = Scenario {
            id: "empty",
            paper_ref: "-",
            section: "-",
            summary: "zero points",
            seeding: Seeding::Derived,
            points: none,
            run_point: run,
            run_batch: None,
            assemble,
        };
        let config = RunConfig {
            scale: Scale::Quick,
            threads: 2,
            root_seed: 1,
            lanes: 1,
            progress: false,
        };
        let runs = execute(&[&empty], &config);
        assert_eq!(runs[0].points, 0);
        assert_eq!(runs[0].wall_ms, 0.0);
        assert!(runs[0].error.is_none());
        assert_eq!(runs[0].tables.len(), 1);

        // A fully empty selection produces no runs at all.
        assert!(execute(&[], &config).is_empty());
    }

    #[test]
    fn a_panicking_point_surfaces_as_the_scenario_error() {
        // The panic is confined to its scenario: the run returns normally,
        // the panicking scenario carries the message as its error, and the
        // other scenario still produces its tables (the pool drained it).
        fn one(_: Scale) -> usize {
            1
        }
        fn explode(_: &PointCtx) -> Result<PointOutput, String> {
            panic!("deliberate test panic");
        }
        fn assemble(_: Scale, _: &[PointOutput]) -> Vec<(String, Table)> {
            unreachable!("assemble must not run for a panicked scenario")
        }
        let panicking = Scenario {
            id: "panicking",
            paper_ref: "-",
            section: "-",
            summary: "always panics",
            seeding: Seeding::Derived,
            points: one,
            run_point: explode,
            run_batch: None,
            assemble,
        };
        let good = seed_echo_scenario();
        for threads in [1, 4] {
            let config = RunConfig {
                scale: Scale::Quick,
                threads,
                root_seed: 1,
                lanes: 1,
                progress: false,
            };
            let pool_before = crate::pool::stats();
            let runs = execute(&[&panicking, &good], &config);
            let error = runs[0].error.as_deref().expect("panic recorded");
            assert!(error.contains("panicked"), "{error}");
            assert!(error.contains("deliberate test panic"), "{error}");
            assert!(runs[0].tables.is_empty());
            assert!(runs[0].wall_ms >= 0.0, "threads={threads}");
            assert!(runs[1].error.is_none(), "threads={threads}");
            assert_eq!(runs[1].tables.len(), 1);
            // The panic went through the pool's guard, so it is visible in
            // the instrumentation (lower bound: other tests share the
            // process-wide counters).
            let delta = crate::pool::stats().since(&pool_before);
            assert!(delta.tasks_panicked >= 1, "{delta:?}");
        }
    }

    #[test]
    fn errors_are_captured_per_scenario() {
        fn one(_: Scale) -> usize {
            1
        }
        fn fail(_: &PointCtx) -> Result<PointOutput, String> {
            Err("boom".to_owned())
        }
        fn assemble(_: Scale, _: &[PointOutput]) -> Vec<(String, Table)> {
            unreachable!("assemble must not run for a failed scenario")
        }
        let bad = Scenario {
            id: "bad",
            paper_ref: "-",
            section: "-",
            summary: "always fails",
            seeding: Seeding::Derived,
            points: one,
            run_point: fail,
            run_batch: None,
            assemble,
        };
        let good = seed_echo_scenario();
        let config = RunConfig {
            scale: Scale::Quick,
            threads: 2,
            root_seed: 1,
            lanes: 1,
            progress: false,
        };
        let runs = execute(&[&bad, &good], &config);
        assert_eq!(runs[0].error.as_deref(), Some("boom"));
        assert!(runs[0].tables.is_empty());
        assert!(runs[1].error.is_none());
        assert_eq!(runs[1].tables.len(), 1);
    }
}
