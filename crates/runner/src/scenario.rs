//! The scenario descriptor: one registered experiment of the evaluation.
//!
//! A scenario is a sweep of independent *points* (one eviction-set size, one
//! transmission period, one defense, …). Each point runs in isolation with a
//! pre-derived seed and returns a [`PointOutput`]; when all points of a
//! scenario have completed, its `assemble` function folds the outputs — in
//! point order — into the final named [`Table`]s. The split is what lets the
//! executor fan points out across threads without changing any result.

use crate::scale::Scale;
use analysis::table::Table;

/// Everything a sweep point gets to see when it runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PointCtx {
    /// Experiment scale (resolves to one `Sizes` row).
    pub scale: Scale,
    /// The point's pre-derived RNG seed (see [`crate::seed`]).
    pub seed: u64,
    /// Index of this point within the scenario's sweep.
    pub index: usize,
}

/// What one sweep point produces.
///
/// `rows` become rows of the scenario's primary table (in point order);
/// `values` carry raw numbers forward for assemblies that need cross-point
/// arithmetic (e.g. the WB/LRU load ratio of Table VI); `aux` carries rows
/// for secondary output tables (e.g. the raw Figure 4 CDF points).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PointOutput {
    /// Rows for the scenario's primary table.
    pub rows: Vec<Vec<String>>,
    /// Raw values for cross-point assembly arithmetic.
    pub values: Vec<f64>,
    /// `(output stem, rows)` for auxiliary tables.
    pub aux: Vec<(String, Vec<Vec<String>>)>,
    /// Simulated cycles this point attributed to memory operations
    /// (sourced from the trace engine's `TraceSummary`s; zero when the
    /// point does not instrument its simulation).
    pub sim_cycles: u64,
    /// Simulated demand accesses this point executed (same source).
    pub sim_accesses: u64,
    /// Simulated cycles attributed to each protocol phase, in
    /// [`PHASE_LABELS`] order (all zero when the point does not instrument
    /// its simulation).
    pub phase_cycles: [u64; PHASE_COUNT],
}

/// Number of protocol-phase slots in [`PointOutput::phase_cycles`].
pub const PHASE_COUNT: usize = 7;

/// Labels of the phase-cycle slots, in slot order.
///
/// The order mirrors the simulator's telemetry phase taxonomy
/// (`sim_core::telemetry::Phase::ALL`); the runner itself stays domain-free
/// and treats these as opaque manifest column labels.
pub const PHASE_LABELS: [&str; PHASE_COUNT] = [
    "calibrate",
    "prime",
    "encode",
    "wait",
    "decode",
    "noise",
    "other",
];

impl PointOutput {
    /// A point output consisting of a single primary-table row.
    pub fn row<I, S>(cells: I) -> PointOutput
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        PointOutput {
            rows: vec![cells.into_iter().map(Into::into).collect()],
            ..PointOutput::default()
        }
    }
}

/// How a scenario's point seeds are derived from the root seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Seeding {
    /// `seed::point_seed(root, id, index)` — the default.
    Derived,
    /// A fixed, calibrated operating-point seed, passed to every point
    /// unchanged.
    ///
    /// Used by scenarios whose pass/fail verdicts were calibrated at a
    /// documented seed (the Section VIII defense evaluation sits at a
    /// borderline operating point by design); neither the root seed nor the
    /// point index moves them.
    Fixed(u64),
}

impl Seeding {
    /// Resolves the seed for one point of scenario `id`.
    pub fn seed_for(self, root: u64, id: &str, index: usize) -> u64 {
        match self {
            Seeding::Derived => crate::seed::point_seed(root, id, index),
            Seeding::Fixed(base) => base,
        }
    }
}

/// Runs one sweep point. Errors are strings so the runner stays domain-free.
pub type PointFn = fn(&PointCtx) -> Result<PointOutput, String>;

/// Runs a whole lane batch of points at once, one output per context in
/// order.
///
/// Contract: `run_batch(ctxs)` must be element-wise bit-identical to
/// `ctxs.iter().map(run_point)` — the batch is an execution strategy, never
/// a result change.  Scenarios whose points share a compiled program shape
/// (see the `lane-shape` verification rule) implement this by batching
/// their independent machines onto one lane bank; the executor falls back
/// to [`PointFn`] per point when lane batching is off (`--lanes 1`).
pub type BatchFn = fn(&[PointCtx]) -> Vec<Result<PointOutput, String>>;

/// Folds all point outputs (in point order) into `(output stem, table)`
/// pairs. The first pair is the scenario's primary table.
pub type AssembleFn = fn(Scale, &[PointOutput]) -> Vec<(String, Table)>;

/// One registered experiment.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// Stable id used on the command line and in the manifest (kebab-case).
    pub id: &'static str,
    /// The paper artefact this reproduces (e.g. `"Table II"`).
    pub paper_ref: &'static str,
    /// The paper section the artefact appears in (e.g. `"Sec. IV-B"`).
    pub section: &'static str,
    /// One-line description for `repro list` and the architecture docs.
    pub summary: &'static str,
    /// Seed-derivation rule for this scenario's points.
    pub seeding: Seeding,
    /// Number of sweep points at a given scale.
    pub points: fn(Scale) -> usize,
    /// Runs one sweep point.
    pub run_point: PointFn,
    /// Runs a lane batch of points at once (`None` ⇒ always per point).
    /// Must be bit-identical to mapping [`Scenario::run_point`] over the
    /// batch; `repro list` marks scenarios carrying one as lane-eligible.
    pub run_batch: Option<BatchFn>,
    /// Assembles the point outputs into output tables.
    pub assemble: AssembleFn,
}

impl Scenario {
    /// The seed of point `index` under root seed `root`.
    pub fn point_seed(&self, root: u64, index: usize) -> u64 {
        self.seeding.seed_for(root, self.id, index)
    }

    /// The scenario-level seed recorded in the manifest.
    pub fn manifest_seed(&self, root: u64) -> u64 {
        match self.seeding {
            Seeding::Derived => crate::seed::scenario_seed(root, self.id),
            Seeding::Fixed(base) => base,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_helper_builds_one_row() {
        let out = PointOutput::row(["a", "b"]);
        assert_eq!(out.rows, vec![vec!["a".to_owned(), "b".to_owned()]]);
        assert!(out.values.is_empty() && out.aux.is_empty());
    }

    #[test]
    fn fixed_seeding_ignores_root_seed_and_index() {
        let fixed = Seeding::Fixed(29);
        assert_eq!(fixed.seed_for(1, "x", 0), 29);
        assert_eq!(fixed.seed_for(999, "x", 7), 29);
        let derived = Seeding::Derived;
        assert_ne!(derived.seed_for(1, "x", 0), derived.seed_for(999, "x", 0));
        assert_ne!(derived.seed_for(1, "x", 0), derived.seed_for(1, "x", 1));
    }
}
