//! Experiment scale and the one sizing table every scenario draws from.
//!
//! The paper's evaluation runs at two sizes: a seconds-long smoke
//! configuration (`Quick`, the CI default) and the paper-comparable
//! configuration (`Full`). Historically each experiment hardcoded its own
//! trial/sample/frame counts; they now all live in the [`Sizes`] table so
//! the scenario documentation and the code cannot drift.

/// Experiment scale: how many trials/frames/samples to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Scale {
    /// Fast smoke-test sizes (seconds).
    Quick,
    /// Paper-comparable sizes (minutes).
    Full,
}

/// The sweep sizes used at one [`Scale`].
///
/// One row of the two-row sizing table ([`Scale::sizes`]); every registered
/// scenario reads its iteration counts from here and nowhere else.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sizes {
    /// Monte-Carlo trials per eviction-probability cell (Tables II and V).
    pub trials: usize,
    /// Latency samples per calibration level (Table IV, Figure 4).
    pub samples: usize,
    /// 128-bit frames per error-rate point (Figure 6, bandwidth summary).
    pub frames: usize,
    /// Trials per side-channel gadget scenario (Section IX).
    pub side_channel_trials: usize,
    /// Sender profiling window in cycles (Tables VI and VII).
    pub sender_window: u64,
    /// Payload bits for the Figure 8 noise-robustness comparison.
    pub comparison_bits: usize,
    /// Samples per class for the defense evaluation (Section VIII).
    pub defense_samples: usize,
    /// Dirty-line counts swept by the Figure 6 error-rate grid.
    pub error_rate_dirty_counts: &'static [usize],
}

/// Sizing for [`Scale::Quick`].
pub const QUICK: Sizes = Sizes {
    trials: 400,
    samples: 150,
    frames: 4,
    side_channel_trials: 120,
    sender_window: 4_000_000,
    comparison_bits: 64,
    defense_samples: 150,
    error_rate_dirty_counts: &[1, 4, 8],
};

/// Sizing for [`Scale::Full`].
pub const FULL: Sizes = Sizes {
    trials: 10_000,
    samples: 1_000,
    frames: 90,
    side_channel_trials: 1_000,
    sender_window: 22_000_000,
    comparison_bits: 256,
    defense_samples: 400,
    error_rate_dirty_counts: &[1, 2, 3, 4, 5, 6, 7, 8],
};

impl Scale {
    /// The sizing table for this scale.
    pub fn sizes(self) -> &'static Sizes {
        match self {
            Scale::Quick => &QUICK,
            Scale::Full => &FULL,
        }
    }

    /// Stable lower-case label (`"quick"` / `"full"`), used by the manifest.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    }

    /// Parses a [`Scale::label`] back into a scale (the experiment service's
    /// job specs name scales by label). Returns `None` for anything else.
    pub fn from_label(label: &str) -> Option<Scale> {
        match label {
            "quick" => Some(Scale::Quick),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_is_strictly_larger_than_quick_everywhere() {
        let q = Scale::Quick.sizes();
        let f = Scale::Full.sizes();
        assert!(f.trials > q.trials);
        assert!(f.samples > q.samples);
        assert!(f.frames > q.frames);
        assert!(f.side_channel_trials > q.side_channel_trials);
        assert!(f.sender_window > q.sender_window);
        assert!(f.comparison_bits > q.comparison_bits);
        assert!(f.defense_samples > q.defense_samples);
        assert!(f.error_rate_dirty_counts.len() > q.error_rate_dirty_counts.len());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Scale::Quick.label(), "quick");
        assert_eq!(Scale::Full.label(), "full");
    }

    #[test]
    fn labels_round_trip_through_from_label() {
        for scale in [Scale::Quick, Scale::Full] {
            assert_eq!(Scale::from_label(scale.label()), Some(scale));
        }
        assert_eq!(Scale::from_label("paper"), None);
        assert_eq!(Scale::from_label(""), None);
    }
}
