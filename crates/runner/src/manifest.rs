//! The run manifest: what ran, with which seeds, and where the outputs went.
//!
//! The manifest is an [`analysis::table::Table`] serialised with the crate's
//! hand-rolled JSON encoder, so downstream tooling can parse it back with
//! [`Table::from_json`] without any external dependency. Apart from the
//! wall-time column it is a pure function of `(root seed, scale, selection)`.

use crate::executor::ScenarioRun;
use analysis::table::{fixed, Table};
use std::io;
use std::path::{Path, PathBuf};

/// Column headers of the manifest table, in order.
///
/// The per-phase cycle columns (one per [`crate::scenario::PHASE_LABELS`]
/// entry) are appended after the original ten so positional consumers —
/// including [`WALL_MS_COLUMN`] — keep their indices; the lane-width column
/// ([`LANES_COLUMN`]) is appended after those for the same reason.
pub const MANIFEST_HEADERS: [&str; 18] = [
    "id",
    "paper ref",
    "scale",
    "seed",
    "points",
    "sim cycles",
    "sim accesses",
    "wall (ms)",
    "status",
    "outputs",
    "calibrate cycles",
    "prime cycles",
    "encode cycles",
    "wait cycles",
    "decode cycles",
    "noise cycles",
    "other cycles",
    "lanes",
];

/// Index of the only non-deterministic manifest column (wall time) — the
/// determinism tests blank it before comparing runs.
pub const WALL_MS_COLUMN: usize = 7;

/// Index of the lane-width column: the batch width the scenario ran at.
/// Lane width is an execution strategy, not a result — equivalence checks
/// comparing runs at different `--lanes` values blank this column too.
pub const LANES_COLUMN: usize = 17;

/// Builds the manifest table for a set of completed scenario runs.
pub fn manifest_table(runs: &[ScenarioRun]) -> Table {
    let mut table = Table::new("repro run manifest", &MANIFEST_HEADERS);
    for run in runs {
        let outputs: Vec<String> = run
            .tables
            .iter()
            .map(|(stem, _)| format!("{stem}.{{md,csv,json}}"))
            .collect();
        let mut row = vec![
            run.id.to_owned(),
            run.paper_ref.to_owned(),
            run.scale.label().to_owned(),
            format!("{:#018x}", run.seed),
            run.points.to_string(),
            run.sim_cycles.to_string(),
            run.sim_accesses.to_string(),
            fixed(run.wall_ms, 1),
            run.error
                .clone()
                .map_or("ok".to_owned(), |e| format!("error: {e}")),
            outputs.join(" "),
        ];
        row.extend(run.phase_cycles.iter().map(u64::to_string));
        row.push(run.lanes.to_string());
        table.push_row(row);
    }
    table
}

/// Writes `manifest.json` under `out_dir` and returns its path.
///
/// # Errors
///
/// Returns any I/O error from creating the directory or writing the file.
pub fn write_manifest(runs: &[ScenarioRun], out_dir: &Path) -> io::Result<PathBuf> {
    std::fs::create_dir_all(out_dir)?;
    let path = out_dir.join("manifest.json");
    std::fs::write(&path, manifest_table(runs).to_json())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;

    fn run(id: &'static str, error: Option<String>) -> ScenarioRun {
        ScenarioRun {
            id,
            paper_ref: "Table II",
            scale: Scale::Quick,
            seed: 0xabcd,
            points: 3,
            wall_ms: 1.25,
            sim_cycles: 0,
            sim_accesses: 0,
            phase_cycles: [1, 2, 3, 4, 5, 6, 7],
            lanes: 1,
            tables: vec![(id.to_owned(), Table::new("t", &["a"]))],
            error,
        }
    }

    #[test]
    fn phase_cycle_columns_follow_the_phase_labels_in_order() {
        use crate::scenario::PHASE_LABELS;
        for (i, label) in PHASE_LABELS.iter().enumerate() {
            assert_eq!(MANIFEST_HEADERS[10 + i], format!("{label} cycles"));
        }
        let table = manifest_table(&[run("table2", None)]);
        assert_eq!(table.rows[0][10..17], ["1", "2", "3", "4", "5", "6", "7"]);
        assert_eq!(MANIFEST_HEADERS[LANES_COLUMN], "lanes");
        assert_eq!(table.rows[0][LANES_COLUMN], "1");
    }

    #[test]
    fn manifest_has_one_row_per_run_and_round_trips() {
        let runs = vec![run("table2", None), run("fig4", Some("boom".to_owned()))];
        let table = manifest_table(&runs);
        assert_eq!(table.len(), 2);
        assert_eq!(table.headers.len(), MANIFEST_HEADERS.len());
        assert_eq!(table.headers[WALL_MS_COLUMN], "wall (ms)");
        assert!(table.rows[0][8] == "ok");
        assert!(table.rows[1][8].starts_with("error: boom"));
        assert_eq!(table.headers[5], "sim cycles");
        assert_eq!(table.rows[0][5], "0");
        let back = Table::from_json(&table.to_json()).unwrap();
        assert_eq!(back, table);
    }

    #[test]
    fn write_manifest_creates_the_file() {
        let dir = std::env::temp_dir().join(format!("runner-manifest-{}", std::process::id()));
        let path = write_manifest(&[run("table2", None)], &dir).unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(Table::from_json(&json).is_ok());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
