//! The scenario registry: ordered collection plus glob selection.

use crate::scenario::Scenario;

/// An ordered collection of registered scenarios with unique ids.
///
/// Registration order is the canonical execution and manifest order, so it
/// should follow the paper's narrative (Table II before Figure 6, …).
#[derive(Debug, Default)]
pub struct Registry {
    scenarios: Vec<Scenario>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Registers a scenario.
    ///
    /// # Panics
    ///
    /// Panics if a scenario with the same id is already registered —
    /// duplicate ids are a programming error in the registering crate.
    pub fn register(&mut self, scenario: Scenario) {
        assert!(
            self.get(scenario.id).is_none(),
            "duplicate scenario id {:?}",
            scenario.id
        );
        self.scenarios.push(scenario);
    }

    /// All scenarios, in registration order.
    pub fn scenarios(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// Looks a scenario up by exact id.
    pub fn get(&self, id: &str) -> Option<&Scenario> {
        self.scenarios.iter().find(|s| s.id == id)
    }

    /// Selects scenarios matching any of `patterns` (exact ids or globs with
    /// `*`/`?`; the keyword `all` selects everything). The selection is
    /// deduplicated and returned in registration order.
    ///
    /// # Errors
    ///
    /// Returns the first pattern that matches no scenario — a typo on the
    /// command line should fail loudly, not silently run nothing.
    pub fn select(&self, patterns: &[String]) -> Result<Vec<&Scenario>, String> {
        let mut picked = vec![false; self.scenarios.len()];
        for pattern in patterns {
            if !self.mark_matches(pattern, &mut picked) {
                return Err(format!(
                    "no scenario matches {pattern:?} (try `repro list`)"
                ));
            }
        }
        Ok(self.collect_picked(&picked))
    }

    /// Like [`Registry::select`] but a pattern that matches nothing is
    /// silently skipped, so the selection may come back empty.
    ///
    /// This is the `repro run --allow-empty` behavior for scripts that sweep
    /// speculative globs and want a successful no-op (plus an empty
    /// manifest) instead of a hard error when nothing matches.
    pub fn select_lenient(&self, patterns: &[String]) -> Vec<&Scenario> {
        let mut picked = vec![false; self.scenarios.len()];
        for pattern in patterns {
            self.mark_matches(pattern, &mut picked);
        }
        self.collect_picked(&picked)
    }

    /// Marks every scenario matching `pattern` (exact id, glob, or the
    /// keyword `all`) in `picked`; returns whether anything matched. The one
    /// matching core both `select` flavors share, so they cannot drift.
    fn mark_matches(&self, pattern: &str, picked: &mut [bool]) -> bool {
        let mut hit = false;
        for (i, scenario) in self.scenarios.iter().enumerate() {
            if pattern == "all" || glob_match(pattern, scenario.id) {
                picked[i] = true;
                hit = true;
            }
        }
        hit
    }

    /// The marked scenarios, deduplicated, in registration order.
    fn collect_picked(&self, picked: &[bool]) -> Vec<&Scenario> {
        self.scenarios
            .iter()
            .zip(picked)
            .filter(|(_, &p)| p)
            .map(|(s, _)| s)
            .collect()
    }
}

/// Matches `text` against a glob `pattern` where `*` matches any run of
/// characters and `?` matches exactly one. Iterative backtracking over
/// bytes (scenario ids are ASCII), no recursion.
pub fn glob_match(pattern: &str, text: &str) -> bool {
    let (p, t) = (pattern.as_bytes(), text.as_bytes());
    let (mut pi, mut ti) = (0, 0);
    let mut star: Option<(usize, usize)> = None;
    while ti < t.len() {
        if pi < p.len() && (p[pi] == b'?' || p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == b'*' {
            star = Some((pi, ti));
            pi += 1;
        } else if let Some((sp, st)) = star {
            // Backtrack: let the last `*` swallow one more character.
            pi = sp + 1;
            ti = st + 1;
            star = Some((sp, st + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == b'*' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;
    use crate::scenario::{PointCtx, PointOutput, Seeding};

    fn dummy(id: &'static str) -> Scenario {
        fn one(_: Scale) -> usize {
            1
        }
        fn run(_: &PointCtx) -> Result<PointOutput, String> {
            Ok(PointOutput::default())
        }
        fn assemble(_: Scale, _: &[PointOutput]) -> Vec<(String, analysis::table::Table)> {
            Vec::new()
        }
        Scenario {
            id,
            paper_ref: "Table 0",
            section: "Sec. 0",
            summary: "dummy",
            seeding: Seeding::Derived,
            points: one,
            run_point: run,
            run_batch: None,
            assemble,
        }
    }

    #[test]
    fn glob_matching_covers_star_and_question_mark() {
        assert!(glob_match("table*", "table2"));
        assert!(glob_match("*", "anything"));
        assert!(glob_match("fig?", "fig4"));
        assert!(glob_match("fig*7", "fig5-7"));
        assert!(!glob_match("fig?", "fig5-7"));
        assert!(!glob_match("table*", "fig4"));
        assert!(glob_match("a*b*c", "aXbYc"));
        assert!(!glob_match("a*b*c", "aXc"));
        assert!(glob_match("", ""));
        assert!(!glob_match("", "x"));
    }

    #[test]
    fn glob_matching_edge_cases() {
        // A bare `*` swallows anything, including the empty string.
        assert!(glob_match("*", ""));
        assert!(glob_match("**", "anything"));
        assert!(glob_match("***", "x"));
        // Star-free patterns are exact matches (`?` still matches one byte).
        assert!(glob_match("table2", "table2"));
        assert!(!glob_match("table2", "table22"));
        assert!(!glob_match("table2", "table"));
        assert!(glob_match("t?ble2", "table2"));
        assert!(!glob_match("t?ble2", "tble2"));
        // A suffix after a star must backtrack to the *last* viable spot.
        assert!(glob_match("ta*2", "table2"));
        assert!(glob_match("*2", "table2"));
        assert!(glob_match("*22", "table222"));
        assert!(!glob_match("*3", "table2"));
        assert!(glob_match("a*a", "aa"));
        assert!(!glob_match("a*a", "a"));
        // The empty pattern matches only the empty string.
        assert!(glob_match("", ""));
        assert!(!glob_match("", "table2"));
        // Trailing stars after the text is consumed are fine.
        assert!(glob_match("table2*", "table2"));
        assert!(glob_match("table2***", "table2"));
        // A `?` can never match the empty remainder.
        assert!(!glob_match("table2?", "table2"));
    }

    #[test]
    fn select_rejects_the_empty_pattern_loudly() {
        let mut registry = Registry::new();
        registry.register(dummy("table2"));
        let error = registry.select(&[String::new()]).unwrap_err();
        assert!(error.contains("no scenario matches"), "{error}");
    }

    #[test]
    fn select_deduplicates_and_preserves_registration_order() {
        let mut registry = Registry::new();
        registry.register(dummy("table2"));
        registry.register(dummy("fig4"));
        registry.register(dummy("table5"));
        let picked = registry
            .select(&["table*".to_owned(), "table2".to_owned(), "fig4".to_owned()])
            .unwrap();
        let ids: Vec<&str> = picked.iter().map(|s| s.id).collect();
        assert_eq!(ids, ["table2", "fig4", "table5"]);
        let all = registry.select(&["all".to_owned()]).unwrap();
        assert_eq!(all.len(), 3);
        assert!(registry.select(&["nope".to_owned()]).is_err());
    }

    #[test]
    fn lenient_selection_skips_unmatched_patterns() {
        let mut registry = Registry::new();
        registry.register(dummy("table2"));
        registry.register(dummy("fig4"));
        // A dud pattern is skipped, matched ones still select (dedup +
        // registration order as in `select`).
        let picked =
            registry.select_lenient(&["nope*".to_owned(), "fig4".to_owned(), "fig?".to_owned()]);
        let ids: Vec<&str> = picked.iter().map(|s| s.id).collect();
        assert_eq!(ids, ["fig4"]);
        // All duds: the selection is empty rather than an error.
        assert!(registry.select_lenient(&["zzz".to_owned()]).is_empty());
        assert!(registry.select_lenient(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate scenario id")]
    fn duplicate_registration_panics() {
        let mut registry = Registry::new();
        registry.register(dummy("x"));
        registry.register(dummy("x"));
    }
}
