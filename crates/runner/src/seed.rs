//! Deterministic seed derivation: `root_seed → scenario id → point index`.
//!
//! Every sweep point's RNG seed is a pure function of the root seed, the
//! scenario's stable id and the point's index within the sweep. Seeds are
//! derived *before* tasks are handed to the thread pool, so the schedule —
//! and therefore `--threads` — cannot influence any result.
//!
//! The mixer is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a bijective
//! finalizer whose output passes BigCrush, which is far more than a cache
//! simulator needs. Scenario ids enter through FNV-1a so that textual ids
//! land on well-separated points of the SplitMix64 orbit.

/// One application of the SplitMix64 finalizer.
///
/// Canonically implemented in [`sim_cache::seed`] (the bottom crate of the
/// workspace, which derives its internal RNG streams with the same mixer);
/// re-exported here so harness code keeps its `runner::seed` spelling and
/// the two layers cannot drift apart.
pub use sim_cache::seed::splitmix64;

/// FNV-1a hash of a string (64-bit), used to fold scenario ids into seeds.
pub fn fnv1a(text: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01B3);
    }
    hash
}

/// The per-scenario seed: `splitmix64(root ^ fnv1a(id))`.
pub fn scenario_seed(root: u64, scenario_id: &str) -> u64 {
    splitmix64(root ^ fnv1a(scenario_id))
}

/// The per-point seed: the scenario seed advanced by the point index.
pub fn point_seed(root: u64, scenario_id: &str, point_index: usize) -> u64 {
    splitmix64(scenario_seed(root, scenario_id) ^ splitmix64(point_index as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_not_identity() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), splitmix64(2));
    }

    #[test]
    fn fnv1a_matches_the_reference_vectors() {
        // Published FNV-1a 64-bit test vectors (offset basis and "a").
        assert_eq!(fnv1a(""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a("a"), 0xAF63_DC4C_8601_EC8C);
    }

    #[test]
    fn scenario_ids_separate_seeds() {
        assert_ne!(scenario_seed(2022, "table2"), scenario_seed(2022, "table5"));
        assert_ne!(scenario_seed(2022, "table2"), scenario_seed(2023, "table2"));
    }

    #[test]
    fn point_seeds_differ_per_index_but_are_reproducible() {
        let a = point_seed(2022, "fig6", 0);
        let b = point_seed(2022, "fig6", 1);
        assert_ne!(a, b);
        assert_eq!(a, point_seed(2022, "fig6", 0));
    }
}
