//! A hand-rolled work-stealing thread pool over `std::thread`.
//!
//! The build environment is offline (no rayon/crossbeam), so the executor
//! brings its own pool: each worker owns a deque seeded round-robin with
//! tasks; a worker pops from the *front* of its own deque and steals from
//! the *back* of a victim's. (Classic Blumofe–Leiserson pools pop LIFO for
//! cache locality between parent and spawned child tasks; here every task
//! is submitted up front and tasks never spawn tasks, so FIFO own-pop keeps
//! execution in rough submission order — progress lines follow the paper's
//! narrative — at no cost.) A worker that finds every deque empty can simply
//! retire.
//!
//! Determinism: results are returned **in submission order** no matter which
//! worker ran what, and seeds are derived before submission — scheduling can
//! affect only wall time, never values.

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::sync::Mutex;
use std::thread;

/// The number of worker threads to default to: `available_parallelism`,
/// or 1 if the platform cannot tell.
pub fn default_threads() -> usize {
    thread::available_parallelism().map_or(1, NonZeroUsize::get)
}

/// Runs `jobs` on `threads` workers and returns their results in submission
/// order.
///
/// With `threads <= 1` (or at most one job) everything runs inline on the
/// calling thread — handy both as the baseline in determinism tests and to
/// keep single-point runs allocation-free.
///
/// # Panics
///
/// If a job panics, the panic is propagated to the caller once all workers
/// have stopped (via `std::thread::scope`).
pub fn run_ordered<T, F>(threads: usize, jobs: Vec<F>) -> Vec<T>
where
    F: FnOnce() -> T + Send,
    T: Send,
{
    let job_count = jobs.len();
    if threads <= 1 || job_count <= 1 {
        return jobs.into_iter().map(|job| job()).collect();
    }
    let workers = threads.min(job_count);

    // Per-worker deques, seeded round-robin so the initial split is even.
    let deques: Vec<Mutex<VecDeque<(usize, F)>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (index, job) in jobs.into_iter().enumerate() {
        deques[index % workers]
            .lock()
            .expect("deque poisoned")
            .push_back((index, job));
    }

    // One slot per job; each job writes exactly its own slot, so the only
    // contention is the brief per-slot lock.
    let slots: Vec<Mutex<Option<T>>> = (0..job_count).map(|_| Mutex::new(None)).collect();

    thread::scope(|scope| {
        for me in 0..workers {
            let deques = &deques;
            let slots = &slots;
            scope.spawn(move || loop {
                let mut task = deques[me].lock().expect("deque poisoned").pop_front();
                if task.is_none() {
                    for offset in 1..workers {
                        let victim = (me + offset) % workers;
                        task = deques[victim].lock().expect("deque poisoned").pop_back();
                        if task.is_some() {
                            break;
                        }
                    }
                }
                match task {
                    Some((index, job)) => {
                        let value = job();
                        *slots[index].lock().expect("slot poisoned") = Some(value);
                    }
                    // Every deque is empty and no task spawns tasks: retire.
                    None => break,
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot poisoned")
                .expect("every submitted job ran")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_submission_order() {
        for threads in [1, 2, 4, 8, 33] {
            let jobs: Vec<_> = (0..100).map(|i| move || i * i).collect();
            let results = run_ordered(threads, jobs);
            let expected: Vec<usize> = (0..100).map(|i| i * i).collect();
            assert_eq!(results, expected, "threads={threads}");
        }
    }

    #[test]
    fn all_jobs_run_exactly_once() {
        let counter = AtomicUsize::new(0);
        let jobs: Vec<_> = (0..257)
            .map(|_| {
                let counter = &counter;
                move || counter.fetch_add(1, Ordering::SeqCst)
            })
            .collect();
        run_ordered(8, jobs);
        assert_eq!(counter.load(Ordering::SeqCst), 257);
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        assert_eq!(run_ordered(64, vec![|| 1, || 2]), vec![1, 2]);
        assert_eq!(run_ordered(4, Vec::<fn() -> u8>::new()), Vec::<u8>::new());
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
