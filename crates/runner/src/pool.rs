//! A hand-rolled work-stealing thread pool over `std::thread`.
//!
//! The build environment is offline (no rayon/crossbeam), so the executor
//! brings its own pool: each worker owns a deque seeded round-robin with
//! tasks; a worker pops from the *front* of its own deque and steals from
//! the *back* of a victim's. (Classic Blumofe–Leiserson pools pop LIFO for
//! cache locality between parent and spawned child tasks; here every task
//! is submitted up front and tasks never spawn tasks, so FIFO own-pop keeps
//! execution in rough submission order — progress lines follow the paper's
//! narrative — at no cost.) A worker that finds every deque empty can simply
//! retire.
//!
//! Determinism: results are returned **in submission order** no matter which
//! worker ran what, and seeds are derived before submission — scheduling can
//! affect only wall time, never values.
//!
//! Robustness: [`run_ordered_catch`] confines a panicking job to its own
//! result slot (`Err(panic message)`) — the worker that ran it keeps pulling
//! tasks, no lock is poisoned (jobs run outside every lock) and the rest of
//! the queue drains normally. [`run_ordered`] keeps the original
//! panic-propagating contract on top of it.
//!
//! Instrumentation: the pool keeps cheap process-wide atomic counters (tasks
//! queued/completed/panicked, steals, queue depth and its peak). [`stats`]
//! snapshots them as a [`PoolStats`]; the experiment service's `/metrics`
//! endpoint and `repro run --verbose` both read from here.

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::thread;

/// The number of worker threads to default to: `available_parallelism`,
/// or 1 if the platform cannot tell.
pub fn default_threads() -> usize {
    thread::available_parallelism().map_or(1, NonZeroUsize::get)
}

// Process-wide pool counters. Cumulative across every `run_ordered*` call in
// the process (the service runs many executor invocations over one pool
// module); readers take deltas when they want per-run numbers. Relaxed
// ordering is enough: these are statistics, not synchronization.
static TASKS_QUEUED: AtomicU64 = AtomicU64::new(0);
static TASKS_COMPLETED: AtomicU64 = AtomicU64::new(0);
static TASKS_PANICKED: AtomicU64 = AtomicU64::new(0);
static STEALS: AtomicU64 = AtomicU64::new(0);
static QUEUE_DEPTH: AtomicU64 = AtomicU64::new(0);
static PEAK_QUEUE_DEPTH: AtomicU64 = AtomicU64::new(0);

/// A snapshot of the process-wide pool counters.
///
/// All fields except `queue_depth` are cumulative monotone counters; use
/// [`PoolStats::since`] to get the delta over a baseline snapshot (what
/// `repro run --verbose` prints).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Tasks handed to the pool.
    pub tasks_queued: u64,
    /// Tasks that ran to completion (including ones that returned an error
    /// value — the pool only counts panics separately).
    pub tasks_completed: u64,
    /// Tasks that panicked (caught and reported per-slot).
    pub tasks_panicked: u64,
    /// Successful steals of a task from another worker's deque.
    pub steals: u64,
    /// Tasks currently queued or running (a gauge, not a counter).
    pub queue_depth: u64,
    /// The highest `queue_depth` ever observed.
    pub peak_queue_depth: u64,
}

impl PoolStats {
    /// The delta of the monotone counters relative to `baseline` (gauges are
    /// carried over unchanged). Saturating, so a stale baseline cannot wrap.
    pub fn since(&self, baseline: &PoolStats) -> PoolStats {
        PoolStats {
            tasks_queued: self.tasks_queued.saturating_sub(baseline.tasks_queued),
            tasks_completed: self
                .tasks_completed
                .saturating_sub(baseline.tasks_completed),
            tasks_panicked: self.tasks_panicked.saturating_sub(baseline.tasks_panicked),
            steals: self.steals.saturating_sub(baseline.steals),
            queue_depth: self.queue_depth,
            peak_queue_depth: self.peak_queue_depth,
        }
    }
}

/// Snapshots the process-wide pool counters.
pub fn stats() -> PoolStats {
    PoolStats {
        tasks_queued: TASKS_QUEUED.load(Ordering::Relaxed),
        tasks_completed: TASKS_COMPLETED.load(Ordering::Relaxed),
        tasks_panicked: TASKS_PANICKED.load(Ordering::Relaxed),
        steals: STEALS.load(Ordering::Relaxed),
        queue_depth: QUEUE_DEPTH.load(Ordering::Relaxed),
        peak_queue_depth: PEAK_QUEUE_DEPTH.load(Ordering::Relaxed),
    }
}

/// Extracts a human-readable message from a caught panic payload.
///
/// `panic!` with a literal carries `&str`, with a format string `String`;
/// anything else (a custom payload) gets a fixed placeholder.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Records the counter updates around one task execution and runs it with a
/// panic guard. Must be called outside every pool lock so a panic can never
/// poison a deque or slot mutex.
fn run_one<T>(job: impl FnOnce() -> T) -> Result<T, String> {
    let result = catch_unwind(AssertUnwindSafe(job));
    QUEUE_DEPTH.fetch_sub(1, Ordering::Relaxed);
    match result {
        Ok(value) => {
            TASKS_COMPLETED.fetch_add(1, Ordering::Relaxed);
            Ok(value)
        }
        Err(payload) => {
            TASKS_PANICKED.fetch_add(1, Ordering::Relaxed);
            Err(panic_message(payload.as_ref()))
        }
    }
}

/// Registers `count` freshly queued tasks with the process-wide counters.
fn record_queued(count: usize) {
    let count = count as u64;
    TASKS_QUEUED.fetch_add(count, Ordering::Relaxed);
    let depth = QUEUE_DEPTH.fetch_add(count, Ordering::Relaxed) + count;
    PEAK_QUEUE_DEPTH.fetch_max(depth, Ordering::Relaxed);
}

/// Runs `jobs` on `threads` workers and returns their results in submission
/// order, confining panics to the job that raised them.
///
/// A slot holds `Err(message)` when its job panicked; every other job still
/// runs (the catching worker keeps draining the queue, and jobs execute
/// outside all pool locks so no mutex is ever poisoned).
///
/// With `threads <= 1` (or at most one job) everything runs inline on the
/// calling thread — handy both as the baseline in determinism tests and to
/// keep single-point runs allocation-free.
pub fn run_ordered_catch<T, F>(threads: usize, jobs: Vec<F>) -> Vec<Result<T, String>>
where
    F: FnOnce() -> T + Send,
    T: Send,
{
    let job_count = jobs.len();
    record_queued(job_count);
    if threads <= 1 || job_count <= 1 {
        return jobs.into_iter().map(run_one).collect();
    }
    let workers = threads.min(job_count);

    // Per-worker deques, seeded round-robin so the initial split is even.
    let deques: Vec<Mutex<VecDeque<(usize, F)>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (index, job) in jobs.into_iter().enumerate() {
        deques[index % workers]
            .lock()
            .expect("deque poisoned")
            .push_back((index, job));
    }

    // One slot per job; each job writes exactly its own slot, so the only
    // contention is the brief per-slot lock.
    let slots: Vec<Mutex<Option<Result<T, String>>>> =
        (0..job_count).map(|_| Mutex::new(None)).collect();

    thread::scope(|scope| {
        for me in 0..workers {
            let deques = &deques;
            let slots = &slots;
            scope.spawn(move || loop {
                let mut task = deques[me].lock().expect("deque poisoned").pop_front();
                if task.is_none() {
                    for offset in 1..workers {
                        let victim = (me + offset) % workers;
                        task = deques[victim].lock().expect("deque poisoned").pop_back();
                        if task.is_some() {
                            STEALS.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                    }
                }
                match task {
                    Some((index, job)) => {
                        let value = run_one(job);
                        *slots[index].lock().expect("slot poisoned") = Some(value);
                    }
                    // Every deque is empty and no task spawns tasks: retire.
                    None => break,
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot poisoned")
                .expect("every submitted job ran")
        })
        .collect()
}

/// Runs `jobs` on `threads` workers and returns their results in submission
/// order.
///
/// With `threads <= 1` (or at most one job) everything runs inline on the
/// calling thread.
///
/// # Panics
///
/// If any job panics, the panic is re-raised on the caller with the original
/// message — but only after every other job has run to completion (see
/// [`run_ordered_catch`] for the error-carrying variant).
pub fn run_ordered<T, F>(threads: usize, jobs: Vec<F>) -> Vec<T>
where
    F: FnOnce() -> T + Send,
    T: Send,
{
    run_ordered_catch(threads, jobs)
        .into_iter()
        .map(|slot| slot.unwrap_or_else(|message| panic!("pool job panicked: {message}")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_submission_order() {
        for threads in [1, 2, 4, 8, 33] {
            let jobs: Vec<_> = (0..100).map(|i| move || i * i).collect();
            let results = run_ordered(threads, jobs);
            let expected: Vec<usize> = (0..100).map(|i| i * i).collect();
            assert_eq!(results, expected, "threads={threads}");
        }
    }

    #[test]
    fn all_jobs_run_exactly_once() {
        let counter = AtomicUsize::new(0);
        let jobs: Vec<_> = (0..257)
            .map(|_| {
                let counter = &counter;
                move || counter.fetch_add(1, Ordering::SeqCst)
            })
            .collect();
        run_ordered(8, jobs);
        assert_eq!(counter.load(Ordering::SeqCst), 257);
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        assert_eq!(run_ordered(64, vec![|| 1, || 2]), vec![1, 2]);
        assert_eq!(run_ordered(4, Vec::<fn() -> u8>::new()), Vec::<u8>::new());
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn a_panicking_job_is_an_error_and_the_queue_still_drains() {
        // One poisoned pill among 64 jobs: its slot carries the panic
        // message, all 63 other jobs still run exactly once, and the call
        // returns (no hung worker, no poisoned lock).
        for threads in [1, 2, 8] {
            let ran = AtomicUsize::new(0);
            let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..64)
                .map(|i| {
                    let ran = &ran;
                    let job: Box<dyn FnOnce() -> usize + Send> = if i == 13 {
                        Box::new(|| panic!("pill {}", 13))
                    } else {
                        Box::new(move || {
                            ran.fetch_add(1, Ordering::SeqCst);
                            i
                        })
                    };
                    job
                })
                .collect();
            let results = run_ordered_catch(threads, jobs);
            assert_eq!(results.len(), 64, "threads={threads}");
            assert_eq!(ran.load(Ordering::SeqCst), 63, "threads={threads}");
            for (i, result) in results.iter().enumerate() {
                if i == 13 {
                    assert_eq!(result.as_ref().unwrap_err(), "pill 13");
                } else {
                    assert_eq!(*result.as_ref().unwrap(), i);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "pool job panicked: boom")]
    fn run_ordered_still_propagates_panics() {
        let jobs: Vec<Box<dyn FnOnce() -> u8 + Send>> =
            vec![Box::new(|| 1), Box::new(|| panic!("boom"))];
        run_ordered(2, jobs);
    }

    #[test]
    fn stats_counters_advance_and_peak_tracks_depth() {
        let before = stats();
        let jobs: Vec<_> = (0..40).map(|i| move || i).collect();
        run_ordered(4, jobs);
        let delta = stats().since(&before);
        // Other tests may run pool jobs concurrently, so assert lower
        // bounds on the deltas, not exact equality.
        assert!(delta.tasks_queued >= 40, "{delta:?}");
        assert!(delta.tasks_completed >= 40, "{delta:?}");
        assert!(stats().peak_queue_depth >= 40);
    }

    #[test]
    fn panicked_tasks_are_counted() {
        let before = stats();
        let jobs: Vec<Box<dyn FnOnce() -> u8 + Send>> = vec![Box::new(|| panic!("counted"))];
        let results = run_ordered_catch(1, jobs);
        assert!(results[0].is_err());
        let delta = stats().since(&before);
        assert!(delta.tasks_panicked >= 1, "{delta:?}");
    }

    #[test]
    fn panic_message_handles_all_payload_shapes() {
        let s: Box<dyn std::any::Any + Send> = Box::new("literal");
        assert_eq!(panic_message(s.as_ref()), "literal");
        let owned: Box<dyn std::any::Any + Send> = Box::new("formatted 7".to_owned());
        assert_eq!(panic_message(owned.as_ref()), "formatted 7");
        let other: Box<dyn std::any::Any + Send> = Box::new(42u32);
        assert_eq!(panic_message(other.as_ref()), "non-string panic payload");
    }
}
