//! # runner
//!
//! The scenario-sweep engine behind the `repro` binary: a registry of every
//! experiment in the reproduction of *Abusing Cache Line Dirty States to Leak
//! Information in Commercial Processors* (HPCA 2022) plus a hand-rolled
//! work-stealing thread pool that fans sweep points out across cores.
//!
//! The crate is deliberately domain-free — it knows about experiment *shape*
//! (scenarios made of independently runnable sweep points that produce
//! [`analysis::table::Table`] rows), not about caches or covert channels.
//! The `bench` crate registers the concrete experiments.
//!
//! * [`scale`] — the [`Scale`] knob (`Quick` vs `Full`) and the
//!   single [`Sizes`] table every experiment draws its
//!   trial/sample/frame counts from.
//! * [`seed`] — SplitMix64-based seed derivation:
//!   `root_seed → scenario id → point index`, so results are reproducible
//!   and independent of execution order.
//! * [`scenario`] — the [`Scenario`] descriptor: stable
//!   id, paper cross-reference, point count, per-point run function and a
//!   deterministic assembly step.
//! * [`registry`] — the [`Registry`]: ordered scenario
//!   collection with glob-pattern selection (`repro run 'table*'`).
//! * [`pool`] — the work-stealing executor over `std::thread` (the build is
//!   offline, so no rayon); results come back in submission order regardless
//!   of thread count, panics are confined to the job that raised them, and
//!   cheap atomic counters ([`PoolStats`]) feed the experiment service's
//!   `/metrics` endpoint and `repro run --verbose`.
//! * [`executor`] — runs selected scenarios on the pool and collects
//!   per-scenario wall times and output tables.
//! * [`manifest`] — renders a run into the `results/manifest.json` table.
//!
//! ## Determinism contract
//!
//! Every sweep point derives its RNG seed from
//! `(root seed, scenario id, point index)` *before* execution and assembles
//! results in point order, so a run is bit-identical at any `--threads`
//! value. The only non-deterministic field anywhere is the wall-time column
//! of the manifest.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod executor;
pub mod manifest;
pub mod pool;
pub mod registry;
pub mod scale;
pub mod scenario;
pub mod seed;

pub use executor::{execute, RunConfig, ScenarioRun};
pub use pool::PoolStats;
pub use registry::Registry;
pub use scale::{Scale, Sizes};
pub use scenario::{PointCtx, PointOutput, Scenario, Seeding};
