//! # defenses
//!
//! The defense catalogue of Section VIII of *Abusing Cache Line Dirty States
//! to Leak Information in Commercial Processors* and an evaluation harness
//! that measures how much of the WB channel survives each mitigation:
//!
//! * noise injection — Prefetch-guard, fuzzy time;
//! * randomisation — random replacement, the random-fill cache;
//! * partitioning — NoMo, DAWG, PLcache line locking;
//! * write-through L1 caches.
//!
//! The harness reports, per defense, the residual latency separation between
//! a clean and a dirty target set and the accuracy of a calibrated receiver,
//! and compares the verdict against the paper's expectation.
//!
//! ## Example
//!
//! ```rust
//! use defenses::{evaluate_defense, Defense, EvaluationConfig};
//!
//! # fn main() -> Result<(), wb_channel::Error> {
//! let config = EvaluationConfig { samples: 32, ..EvaluationConfig::default() };
//! let undefended = evaluate_defense(Defense::None, &config)?;
//! assert!(!undefended.mitigated);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod defense;
pub mod evaluate;

pub use defense::Defense;
pub use evaluate::{
    evaluate_all, evaluate_defense, evaluate_defense_majority, DefenseEvaluation, EvaluationConfig,
    MAJORITY_SEEDS,
};
