//! Defense evaluation harness.
//!
//! For every [`Defense`] the harness re-runs the core WB-channel measurement
//! — "can the receiver distinguish a target set with `d` dirty lines from a
//! clean one by timing a replacement sweep?" — and reports the residual
//! distinguishability.  This mirrors how Section VIII argues about each
//! defense: not with full transmissions but with the latency separation the
//! receiver has left to work with.

use crate::defense::{Defense, RECEIVER_DOMAIN, SENDER_DOMAIN};
use analysis::threshold::BinaryThreshold;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim_cache::cache::AccessContext;
use sim_cache::policy::PolicyKind;
use sim_cache::trace::TraceOp;
use sim_core::machine::{Machine, MachineConfig};
use sim_core::memlayout::{ChannelLayout, SetLines};
use sim_core::process::{AddressSpace, ProcessId};
use wb_channel::Error;

/// Result of evaluating one defense.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DefenseEvaluation {
    /// The defense evaluated.
    pub defense: Defense,
    /// Human-readable defense name.
    pub label: String,
    /// Mean replacement latency with a clean target set.
    pub mean_clean: f64,
    /// Mean replacement latency with `dirty_lines` dirty lines.
    pub mean_dirty: f64,
    /// How many dirty lines the sender used.
    pub dirty_lines: usize,
    /// Accuracy of a calibrated binary classifier distinguishing the two
    /// cases on held-out samples (0.5 = chance, 1.0 = perfect).
    pub accuracy: f64,
    /// Whether the harness considers the defense to have mitigated the
    /// channel (accuracy below [`MITIGATION_ACCURACY`]).
    pub mitigated: bool,
    /// The paper's verdict, for the comparison tables.
    pub paper_expectation: String,
}

/// Classification accuracy below which a defense counts as mitigating.
pub const MITIGATION_ACCURACY: f64 = 0.75;

/// Configuration of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EvaluationConfig {
    /// Samples per class (half used for calibration, half for scoring).
    pub samples: usize,
    /// Number of dirty lines the sender encodes with.
    pub dirty_lines: usize,
    /// Target set.
    pub target_set: usize,
    /// Replacement-set size.
    pub replacement_size: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for EvaluationConfig {
    fn default() -> Self {
        EvaluationConfig {
            samples: 160,
            dirty_lines: 3,
            target_set: 21,
            replacement_size: 10,
            seed: 29,
        }
    }
}

/// Evaluates one defense.
///
/// # Errors
///
/// Propagates machine-configuration errors.
pub fn evaluate_defense(
    defense: Defense,
    config: &EvaluationConfig,
) -> Result<DefenseEvaluation, Error> {
    let mut machine_config = MachineConfig::xeon_e5_2650(PolicyKind::TreePlru, config.seed);
    // Keep the evaluation deterministic apart from the defense itself.
    machine_config.interrupts = sim_core::sched::InterruptConfig::none();
    defense.apply_to_machine_config(&mut machine_config);
    let mut machine = Machine::new(machine_config)?;
    defense.apply_to_machine(&mut machine)?;

    let geometry = machine.l1_geometry();
    // The attacker adapts the replacement-set size to the defense (the
    // paper's Sec. VI-A counter to pseudo-random replacement).
    let replacement_size = defense.attacker_replacement_size(config.replacement_size);
    let receiver_layout = ChannelLayout::build(
        AddressSpace::new(ProcessId(RECEIVER_DOMAIN)),
        geometry,
        config.target_set,
        geometry.associativity,
        replacement_size,
    );
    let sender_lines = SetLines::build(
        AddressSpace::new(ProcessId(SENDER_DOMAIN)),
        geometry,
        config.target_set,
        geometry.associativity,
        0,
    );
    // Guard lines used by Prefetch-guard (a separate "defense" domain).
    let guard_lines = SetLines::build(
        AddressSpace::new(ProcessId(7)),
        geometry,
        config.target_set,
        8,
        7_000,
    );
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xdef);

    // Warm everything (two batched traces, one per domain).
    let receiver_warm: Vec<TraceOp> = receiver_layout
        .replacement_a
        .lines()
        .iter()
        .chain(receiver_layout.replacement_b.lines())
        .chain(receiver_layout.target_lines.lines())
        .map(|&addr| TraceOp::read(addr))
        .collect();
    let sender_warm: Vec<TraceOp> = sender_lines
        .lines()
        .iter()
        .chain(guard_lines.lines())
        .map(|&addr| TraceOp::read(addr))
        .collect();
    machine.run_trace(RECEIVER_DOMAIN, &receiver_warm);
    machine.run_trace(SENDER_DOMAIN, &sender_warm);

    let mut sweeps = 0u64;
    let mut locked_lines: Vec<sim_cache::addr::PhysAddr> = Vec::new();
    let mut observe = |machine: &mut Machine, rng: &mut StdRng, d: usize| -> u64 {
        // Sender encodes d dirty lines (the protected process's stores).
        // Unless the defense interleaves per-store lock operations, the
        // burst runs as one batched trace.
        if defense.locks_protected_lines() {
            for i in 0..d {
                let line = sender_lines.line(i);
                machine.write(SENDER_DOMAIN, line);
                machine.hierarchy_mut().l1_mut().lock_line(line);
                locked_lines.push(line);
            }
        } else {
            let encode: Vec<TraceOp> = (0..d)
                .map(|i| TraceOp::write(sender_lines.line(i)))
                .collect();
            machine.run_trace(SENDER_DOMAIN, &encode);
        }
        // Prefetch-guard injects guard lines into the suspicious set.
        for g in 0..defense.guard_prefetch_degree() {
            let line = guard_lines.line(g % guard_lines.len());
            machine
                .hierarchy_mut()
                .prefetch_into_l1(line, AccessContext::for_domain(7));
        }
        // Receiver decodes: a measured sweep with alternating replacement sets.
        let replacement = receiver_layout.replacement_for(sweeps);
        sweeps += 1;
        let order = replacement.shuffled(rng);
        let (measured, _) = machine.measured_chase(RECEIVER_DOMAIN, &order);
        // PLcache: the protected process unlocks (and cleans up) its lines at
        // the end of its critical section so the next iteration starts fresh.
        if defense.locks_protected_lines() {
            for line in locked_lines.drain(..) {
                machine.hierarchy_mut().l1_mut().unlock_line(line);
                machine
                    .hierarchy_mut()
                    .flush(line, AccessContext::for_domain(SENDER_DOMAIN));
            }
        }
        measured
    };

    // Collect samples, interleaving the two classes.
    let per_class = config.samples.max(16);
    let mut clean = Vec::with_capacity(per_class);
    let mut dirty = Vec::with_capacity(per_class);
    for _ in 0..per_class {
        clean.push(observe(&mut machine, &mut rng, 0) as f64);
        dirty.push(observe(&mut machine, &mut rng, config.dirty_lines) as f64);
    }

    // Calibrate on the first half, score on the second half.
    let half = per_class / 2;
    let threshold = BinaryThreshold::calibrate(&clean[..half], &dirty[..half]);
    let ones_are_slower = threshold.mean_one >= threshold.mean_zero;
    let mut correct = 0usize;
    let mut total = 0usize;
    for &value in &clean[half..] {
        let classified_dirty = if ones_are_slower {
            threshold.classify(value)
        } else {
            !threshold.classify(value)
        };
        if !classified_dirty {
            correct += 1;
        }
        total += 1;
    }
    for &value in &dirty[half..] {
        let classified_dirty = if ones_are_slower {
            threshold.classify(value)
        } else {
            !threshold.classify(value)
        };
        if classified_dirty {
            correct += 1;
        }
        total += 1;
    }
    let accuracy = correct as f64 / total.max(1) as f64;
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;

    Ok(DefenseEvaluation {
        label: defense.label(),
        paper_expectation: defense.paper_expectation().to_owned(),
        mean_clean: mean(&clean),
        mean_dirty: mean(&dirty),
        dirty_lines: config.dirty_lines,
        accuracy,
        mitigated: accuracy < MITIGATION_ACCURACY,
        defense,
    })
}

/// Number of derived seeds a majority evaluation runs per defense.
pub const MAJORITY_SEEDS: usize = 5;

/// Evaluates one defense at [`MAJORITY_SEEDS`] seeds derived from
/// `config.seed` with SplitMix64 and returns the **median** run with the
/// **majority** mitigation verdict.
///
/// Single-seed verdicts sit right at the mitigation threshold for some
/// defenses by design (random replacement at `L = 10` has only a ~74%
/// per-line eviction rate, Table V), so any one RNG stream can land on
/// either side.  Running an odd number of derived seeds and majority-voting
/// makes the verdict a property of the defense, not of the stream — which is
/// what let the registry drop its pinned calibration seed.
///
/// Because a run is "mitigated" exactly when its accuracy is below
/// [`MITIGATION_ACCURACY`], the majority verdict always agrees with the
/// accuracy-median run, which is the one returned (so the reported means and
/// accuracy are a real, internally consistent observation, not a blend).
///
/// # Errors
///
/// Propagates errors from [`evaluate_defense`].
pub fn evaluate_defense_majority(
    defense: Defense,
    config: &EvaluationConfig,
) -> Result<DefenseEvaluation, Error> {
    let mut runs = Vec::with_capacity(MAJORITY_SEEDS);
    for index in 0..MAJORITY_SEEDS {
        let seed = sim_cache::seed::stream_seed(config.seed, 0x6465_6600 + index as u64);
        let run_config = EvaluationConfig { seed, ..*config };
        runs.push(evaluate_defense(defense, &run_config)?);
    }
    runs.sort_by(|a, b| a.accuracy.total_cmp(&b.accuracy));
    let median = runs.swap_remove(MAJORITY_SEEDS / 2);
    debug_assert_eq!(
        median.mitigated,
        runs.iter().filter(|r| r.mitigated).count() + usize::from(median.mitigated)
            > MAJORITY_SEEDS / 2,
        "median verdict must equal the majority vote"
    );
    Ok(median)
}

/// Evaluates every defense in [`Defense::ALL`] with the derived-seed
/// majority verdict of [`evaluate_defense_majority`] — single-seed verdicts
/// are borderline by design for some defenses, so the robust evaluation is
/// the default for whole-catalogue sweeps.
///
/// # Errors
///
/// Propagates errors from [`evaluate_defense`].
pub fn evaluate_all(config: &EvaluationConfig) -> Result<Vec<DefenseEvaluation>, Error> {
    Defense::ALL
        .iter()
        .map(|&d| evaluate_defense_majority(d, config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> EvaluationConfig {
        EvaluationConfig {
            samples: 80,
            ..EvaluationConfig::default()
        }
    }

    #[test]
    fn undefended_channel_is_fully_distinguishable() {
        let result = evaluate_defense(Defense::None, &config()).unwrap();
        assert!(result.accuracy > 0.95, "accuracy {}", result.accuracy);
        assert!(!result.mitigated);
        assert!(result.mean_dirty > result.mean_clean + 20.0);
    }

    #[test]
    fn write_through_l1_kills_the_channel() {
        let result = evaluate_defense(Defense::WriteThroughL1, &config()).unwrap();
        assert!(result.mitigated, "accuracy {}", result.accuracy);
    }

    #[test]
    fn random_replacement_does_not_stop_the_channel() {
        // Two robustness mechanisms combine here: the evaluation models the
        // paper's adaptive attacker (Sec. VI-A: enlarge the replacement set
        // to L = 12 against pseudo-random eviction), and the verdict is the
        // derived-seed majority instead of a single borderline stream.
        let result = evaluate_defense_majority(Defense::RandomReplacement, &config()).unwrap();
        assert!(
            !result.mitigated,
            "the paper shows random replacement is insufficient (accuracy {})",
            result.accuracy
        );
        assert!(result.accuracy > 0.75, "accuracy {}", result.accuracy);
        // Only the random-replacement defense triggers the adaptation, and a
        // configured size beyond the Sec. VI-A operating point is respected.
        assert_eq!(Defense::RandomReplacement.attacker_replacement_size(10), 12);
        assert_eq!(Defense::RandomReplacement.attacker_replacement_size(14), 14);
        assert_eq!(Defense::None.attacker_replacement_size(10), 10);
    }

    #[test]
    fn prefetch_guard_does_not_stop_the_channel() {
        let result = evaluate_defense(Defense::PrefetchGuard { degree: 2 }, &config()).unwrap();
        assert!(
            !result.mitigated,
            "Prefetch-guard noise lines should not defeat WB (accuracy {})",
            result.accuracy
        );
    }

    #[test]
    fn partitioning_defenses_stop_the_channel() {
        for defense in [
            Defense::NoMoPartitioning,
            Defense::Dawg,
            Defense::PlCacheLocking,
        ] {
            let result = evaluate_defense(defense, &config()).unwrap();
            assert!(
                result.mitigated,
                "{} should mitigate, accuracy {}",
                result.label, result.accuracy
            );
        }
    }

    #[test]
    fn large_window_random_fill_mitigates() {
        let result =
            evaluate_defense_majority(Defense::RandomFill { window: 256 }, &config()).unwrap();
        assert!(result.mitigated, "accuracy {}", result.accuracy);
    }

    #[test]
    fn fuzzy_time_reduces_accuracy() {
        let baseline = evaluate_defense(Defense::None, &config()).unwrap();
        let fuzzy = evaluate_defense(
            Defense::FuzzyTime {
                granularity: 128,
                jitter: 64,
            },
            &config(),
        )
        .unwrap();
        assert!(fuzzy.accuracy < baseline.accuracy);
    }

    #[test]
    fn evaluate_all_covers_every_defense_and_matches_expectations() {
        let results = evaluate_all(&config()).unwrap();
        assert_eq!(results.len(), Defense::ALL.len());
        for result in &results {
            // Fuzzy time is allowed to land on either side (the paper calls
            // it a weakening, not a guarantee); everything else must match
            // the paper's verdict.
            if matches!(result.defense, Defense::FuzzyTime { .. }) {
                continue;
            }
            assert_eq!(
                result.mitigated,
                result.defense.expected_to_mitigate(),
                "{}: accuracy {} vs expectation {}",
                result.label,
                result.accuracy,
                result.paper_expectation
            );
        }
    }
}
