//! The defense catalogue of Section VIII.
//!
//! Each [`Defense`] describes one mitigation the paper discusses, how it is
//! realised on the simulator, and the paper's verdict on whether it stops the
//! WB channel.  [`Defense::apply_to_machine_config`] and
//! [`Defense::apply_to_machine`] install it; the evaluation harness in
//! [`crate::evaluate`] then measures what is left of the channel.

use sim_cache::hierarchy::RandomFillConfig;
use sim_cache::policy::PolicyKind;
use sim_cache::waymask::WayMask;
use sim_core::machine::{Machine, MachineConfig};
use sim_core::tsc::TscConfig;
use wb_channel::Error;

/// The protection domains the evaluation harness uses.
pub const RECEIVER_DOMAIN: u16 = 1;
/// The sender's (protected process's) domain.
pub const SENDER_DOMAIN: u16 = 2;

/// A defense against the WB channel.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub enum Defense {
    /// No defense (baseline).
    None,
    /// Write-through L1: no dirty bits, no write-back latency difference.
    WriteThroughL1,
    /// Pseudo-random replacement (the paper shows this does *not* stop the
    /// channel).
    RandomReplacement,
    /// Random-fill cache (Liu & Lee) with the given fill window in lines.
    RandomFill {
        /// Half-width of the fill neighbourhood, in cache lines.
        window: u64,
    },
    /// NoMo-style static way partitioning: each hardware thread gets half of
    /// the ways of every set.
    NoMoPartitioning,
    /// DAWG-style way partitioning by protection domain (modelled identically
    /// to NoMo at the L1: disjoint way masks per domain).
    Dawg,
    /// PLcache: the protected process's lines are locked and cannot be
    /// evicted by other processes.
    PlCacheLocking,
    /// Prefetch-guard: the defense injects prefetched lines into the attacked
    /// set after suspicious activity (ineffective against WB, per the paper).
    PrefetchGuard {
        /// Number of guard lines injected per sampling period.
        degree: usize,
    },
    /// Fuzzy time: the time-stamp counter is quantised and jittered.
    FuzzyTime {
        /// Counter granularity in cycles.
        granularity: u64,
        /// Additional uniform jitter in cycles.
        jitter: u64,
    },
}

impl Defense {
    /// Every defense evaluated by the `repro defenses` experiment.
    pub const ALL: [Defense; 9] = [
        Defense::None,
        Defense::WriteThroughL1,
        Defense::RandomReplacement,
        Defense::RandomFill { window: 64 },
        Defense::NoMoPartitioning,
        Defense::Dawg,
        Defense::PlCacheLocking,
        Defense::PrefetchGuard { degree: 2 },
        Defense::FuzzyTime {
            granularity: 64,
            jitter: 32,
        },
    ];

    /// Human-readable name used in result tables.
    pub fn label(&self) -> String {
        match self {
            Defense::None => "no defense".to_owned(),
            Defense::WriteThroughL1 => "write-through L1".to_owned(),
            Defense::RandomReplacement => "random replacement".to_owned(),
            Defense::RandomFill { window } => format!("random-fill cache (±{window} lines)"),
            Defense::NoMoPartitioning => "NoMo way partitioning".to_owned(),
            Defense::Dawg => "DAWG way partitioning".to_owned(),
            Defense::PlCacheLocking => "PLcache line locking".to_owned(),
            Defense::PrefetchGuard { degree } => format!("Prefetch-guard (degree {degree})"),
            Defense::FuzzyTime {
                granularity,
                jitter,
            } => format!("fuzzy time (gran {granularity}, jitter {jitter})"),
        }
    }

    /// The verdict Section VIII of the paper reaches for this defense.
    pub fn paper_expectation(&self) -> &'static str {
        match self {
            Defense::None => "channel works (baseline)",
            Defense::WriteThroughL1 => "mitigates, but large performance cost",
            Defense::RandomReplacement => "does NOT mitigate (Sec. VI-A)",
            Defense::RandomFill { .. } => "mitigates when the window is large enough",
            Defense::NoMoPartitioning | Defense::Dawg => "mitigates via eviction isolation",
            Defense::PlCacheLocking => "mitigates (locked dirty lines cannot be replaced)",
            Defense::PrefetchGuard { .. } => "does NOT mitigate (noise lines are not enough)",
            Defense::FuzzyTime { .. } => "weakens the channel; attacker can build other clocks",
        }
    }

    /// Whether the paper expects this defense to stop the WB channel.
    pub fn expected_to_mitigate(&self) -> bool {
        matches!(
            self,
            Defense::WriteThroughL1
                | Defense::RandomFill { .. }
                | Defense::NoMoPartitioning
                | Defense::Dawg
                | Defense::PlCacheLocking
                | Defense::FuzzyTime { .. }
        )
    }

    /// Applies the configuration-level part of the defense.
    pub fn apply_to_machine_config(&self, config: &mut MachineConfig) {
        match self {
            Defense::WriteThroughL1 => {
                config.hierarchy = sim_cache::hierarchy::HierarchyConfig::write_through_l1(
                    config.hierarchy.l1d.replacement,
                    config.seed,
                );
            }
            Defense::RandomReplacement => {
                config.hierarchy.l1d.replacement = PolicyKind::Random;
            }
            Defense::RandomFill { window } => {
                config.hierarchy.l1_random_fill = Some(RandomFillConfig { window: *window });
            }
            Defense::FuzzyTime {
                granularity,
                jitter,
            } => {
                config.tsc = TscConfig::fuzzy(*granularity, *jitter);
            }
            _ => {}
        }
    }

    /// Applies the runtime part of the defense to a freshly built machine
    /// (way partitions).  Line locking and guard prefetches are applied by
    /// the evaluation loop because they react to the protected process's
    /// accesses.
    ///
    /// # Errors
    ///
    /// Propagates partitioning errors.
    pub fn apply_to_machine(&self, machine: &mut Machine) -> Result<(), Error> {
        match self {
            Defense::NoMoPartitioning | Defense::Dawg => {
                let ways = machine.l1_geometry().associativity;
                let half = ways / 2;
                machine
                    .hierarchy_mut()
                    .l1_mut()
                    .set_partition(RECEIVER_DOMAIN, WayMask::range(0, half))?;
                machine
                    .hierarchy_mut()
                    .l1_mut()
                    .set_partition(SENDER_DOMAIN, WayMask::range(half, ways))?;
                Ok(())
            }
            _ => Ok(()),
        }
    }

    /// The replacement-set size a realistic attacker uses against this
    /// defense, given the evaluation's configured base size.
    ///
    /// Section VI-A's answer to pseudo-random replacement is precisely to
    /// enlarge the receiver's replacement set: at `L = 10` a dirty line
    /// survives each sweep with probability `((W-d)/W)^L ≈ 26%` (Table V),
    /// which puts the verdict on the mitigation threshold, while `L = 12`
    /// restores a stable channel.  Every other defense leaves the base size
    /// unchanged.
    pub fn attacker_replacement_size(&self, base: usize) -> usize {
        match self {
            Defense::RandomReplacement => base.max(12),
            _ => base,
        }
    }

    /// Whether the evaluation loop must lock the protected process's dirty
    /// lines after each encoding step (PLcache).
    pub fn locks_protected_lines(&self) -> bool {
        matches!(self, Defense::PlCacheLocking)
    }

    /// Number of guard lines to prefetch into the target set per period.
    pub fn guard_prefetch_degree(&self) -> usize {
        match self {
            Defense::PrefetchGuard { degree } => *degree,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_cache::config::WritePolicy;

    #[test]
    fn labels_and_expectations_are_defined_for_all_defenses() {
        for defense in Defense::ALL {
            assert!(!defense.label().is_empty());
            assert!(!defense.paper_expectation().is_empty());
        }
    }

    #[test]
    fn config_level_defenses_modify_the_machine_config() {
        let mut config = MachineConfig::xeon_e5_2650(PolicyKind::TreePlru, 1);
        Defense::WriteThroughL1.apply_to_machine_config(&mut config);
        assert_eq!(config.hierarchy.l1d.write_policy, WritePolicy::WriteThrough);

        let mut config = MachineConfig::xeon_e5_2650(PolicyKind::TreePlru, 1);
        Defense::RandomReplacement.apply_to_machine_config(&mut config);
        assert_eq!(config.hierarchy.l1d.replacement, PolicyKind::Random);

        let mut config = MachineConfig::xeon_e5_2650(PolicyKind::TreePlru, 1);
        Defense::RandomFill { window: 32 }.apply_to_machine_config(&mut config);
        assert!(config.hierarchy.l1_random_fill.is_some());

        let mut config = MachineConfig::xeon_e5_2650(PolicyKind::TreePlru, 1);
        Defense::FuzzyTime {
            granularity: 64,
            jitter: 8,
        }
        .apply_to_machine_config(&mut config);
        assert_eq!(config.tsc.granularity, 64);
    }

    #[test]
    fn partitioning_defense_restricts_both_domains() {
        let mut machine = Machine::xeon_e5_2650(PolicyKind::TreePlru, 2);
        Defense::NoMoPartitioning
            .apply_to_machine(&mut machine)
            .unwrap();
        let receiver_mask = machine.hierarchy().l1().partition_of(RECEIVER_DOMAIN);
        let sender_mask = machine.hierarchy().l1().partition_of(SENDER_DOMAIN);
        assert_eq!(receiver_mask.count(), 4);
        assert_eq!(sender_mask.count(), 4);
        assert!(receiver_mask.and(sender_mask).is_empty());
    }

    #[test]
    fn runtime_flags_match_the_defense_kind() {
        assert!(Defense::PlCacheLocking.locks_protected_lines());
        assert!(!Defense::None.locks_protected_lines());
        assert_eq!(
            Defense::PrefetchGuard { degree: 3 }.guard_prefetch_degree(),
            3
        );
        assert_eq!(Defense::None.guard_prefetch_degree(), 0);
    }

    #[test]
    fn expectations_match_the_paper() {
        assert!(!Defense::RandomReplacement.expected_to_mitigate());
        assert!(!Defense::PrefetchGuard { degree: 2 }.expected_to_mitigate());
        assert!(Defense::WriteThroughL1.expected_to_mitigate());
        assert!(Defense::PlCacheLocking.expected_to_mitigate());
    }
}
