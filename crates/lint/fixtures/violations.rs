// Lint self-test fixture: every rule violated, no escapes. This file is NOT
// part of any module tree — it is consumed via include_str! by the lint
// crate's tests and must never be compiled.

use std::collections::{HashMap, HashSet};
use std::time::{Instant, SystemTime};

pub fn wall_clock() -> u64 {
    let started = Instant::now();
    let _epoch = SystemTime::now();
    started.elapsed().as_nanos() as u64
}

pub fn telemetry_wall_stamp() -> u64 {
    sim_core::telemetry::cycle_stamp(Instant::now().elapsed().as_nanos() as u64)
}

pub fn hashers() -> usize {
    let map: HashMap<u8, u8> = HashMap::new();
    let set: HashSet<u8> = HashSet::new();
    map.len() + set.len()
}

pub fn prints() {
    println!("library code owning the terminal");
    eprintln!("and stderr too");
}

pub fn unwraps(input: Option<u8>) -> u8 {
    input.unwrap() + Some(1u8).expect("always some")
}
