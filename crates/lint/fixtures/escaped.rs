// Lint self-test fixture: the same violations as violations.rs, each carrying
// a justified lint:allow escape. Placed (synthetically) as a non-root module,
// this file must lint clean. Not part of any module tree; consumed via
// include_str! only.

// Keyed lookups only, never iterated: lint:allow(default-hasher)
use std::collections::HashMap;
use std::time::Instant; // wall time never reaches results: lint:allow(wall-clock)

pub fn wall_clock() -> u64 {
    let started = Instant::now(); // lint:allow(wall-clock) progress display only
    started.elapsed().as_nanos() as u64
}

pub fn telemetry_wall_stamp() -> u64 {
    // Replay tool mapping wall time onto cycles: lint:allow(telemetry-wall-clock, wall-clock)
    sim_core::telemetry::cycle_stamp(Instant::now().elapsed().as_nanos() as u64)
}

pub fn hashers() -> usize {
    let map: HashMap<u8, u8> = HashMap::new(); // lint:allow(default-hasher) keyed only
    map.len()
}

pub fn prints() {
    // Operator-facing progress line: lint:allow(println-in-lib)
    eprintln!("progress 1/1");
}

pub fn unwraps(input: Option<u8>) -> u8 {
    // Invariant upheld by construction: lint:allow(service-unwrap)
    input.unwrap()
}
