//! # lint
//!
//! The workspace determinism linter behind `repro lint`: a std-only source
//! scanner enforcing the repo-specific hygiene rules that bit-exact
//! reproduction depends on but `clippy` has no opinion about.
//!
//! ## Rules
//!
//! | rule | scope | meaning |
//! |---|---|---|
//! | `wall-clock` | everywhere except the bench harness, the service (socket deadlines) and the runner's wall-time manifest field (`crates/runner/src/executor.rs`) | no `Instant::now` / `SystemTime`: simulated time is the only clock results may depend on |
//! | `telemetry-wall-clock` | everywhere, **including** the wall-clock-exempt crates | no `Instant::now` / `SystemTime` on a line that touches `telemetry`: trace events are timestamped in simulated cycles only, even in code that is otherwise allowed to read the wall clock |
//! | `default-hasher` | `sim-cache`, `sim-core`, `core`, `baselines`, `defenses` | no std `HashMap`/`HashSet`: the default hasher is seeded per-process, so iteration order is not reproducible |
//! | `println-in-lib` | every library file (anything not under a `bin/` directory) | no `println!`/`eprintln!`: libraries report through return values, binaries own the terminal |
//! | `service-unwrap` | the service's request-handling modules (`server.rs`, `http.rs`, `json.rs`) | no `.unwrap()`/`.expect(`: a malformed request must produce a 4xx/5xx response, never a worker panic |
//! | `unsafe-header` | every crate root (`src/lib.rs`) | the `#![forbid(unsafe_code)]` header must be present, making the workspace-level deny locally visible and unoverridable |
//!
//! ## Escapes
//!
//! A finding is suppressed by `// lint:allow(<rule>)` on the offending line
//! or the line directly above it (commas separate multiple rules). Escapes
//! are expected to carry a justification comment, e.g. the keyed-lookup-only
//! `HashMap` in `sim-cache`'s prefetcher.
//!
//! ## What is scanned
//!
//! [`lint_workspace`] walks every `.rs` file under a `src/` directory of the
//! workspace root and its `crates/` members, in sorted order. `shims/`
//! (vendored stand-ins for crates.io dependencies), `target/`, hidden
//! directories, test/bench/example trees and this crate's own `fixtures/`
//! (committed rule violations for the self-tests) are not scanned. Regions
//! under `#[cfg(test)]` are skipped, and comments, string literals and char
//! literals are blanked before token matching — a rule name appearing in a
//! doc comment is not a finding.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Every rule the linter knows, in report order.
pub const RULES: [&str; 6] = [
    "wall-clock",
    "telemetry-wall-clock",
    "default-hasher",
    "println-in-lib",
    "service-unwrap",
    "unsafe-header",
];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path (forward slashes) of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule (one of [`RULES`]).
    pub rule: &'static str,
    /// What was found and why it matters.
    pub message: String,
}

impl Finding {
    /// The finding as one machine-readable JSON object (NDJSON-friendly).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"path\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
            json_escape(&self.path),
            self.line,
            self.rule,
            json_escape(&self.message)
        )
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Outcome of one [`lint_workspace`] pass.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Files scanned.
    pub files: usize,
    /// Findings across all files, in path order.
    pub findings: Vec<Finding>,
}

fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Lints the workspace rooted at `root` (the directory holding the
/// workspace `Cargo.toml`).
///
/// # Errors
///
/// Returns I/O errors from walking and reading sources; findings are data
/// in the report, not errors.
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let mut files: Vec<PathBuf> = Vec::new();
    collect_sources(root, root, &mut files)?;
    files.sort();
    let mut report = LintReport::default();
    for file in files {
        let source = fs::read_to_string(&file)?;
        let relative = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        report.files += 1;
        report.findings.extend(lint_source(&relative, &source));
    }
    Ok(report)
}

/// Recursively collects the `.rs` files to scan: anything under a `src`
/// directory, skipping `shims`, `target`, `fixtures` and hidden directories.
fn collect_sources(root: &Path, dir: &Path, files: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name.starts_with('.')
                || name == "target"
                || name == "fixtures"
                || (name == "shims" && dir == root)
            {
                continue;
            }
            collect_sources(root, &path, files)?;
        } else if name.ends_with(".rs") {
            let under_src = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .any(|c| c.as_os_str() == "src");
            if under_src {
                files.push(path);
            }
        }
    }
    Ok(())
}

/// Lints one source file given its workspace-relative `path` (forward
/// slashes) — the pure core of [`lint_workspace`], directly testable
/// against fixture strings.
pub fn lint_source(path: &str, source: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let stripped = strip_comments_and_strings(source);
    let raw_lines: Vec<&str> = source.lines().collect();
    let stripped_lines: Vec<&str> = stripped.lines().collect();
    let in_test = test_regions(&stripped_lines);
    let allows = collect_allows(&raw_lines);

    let allowed = |line: usize, rule: &str| {
        allows
            .iter()
            .any(|(l, r)| r == rule && (*l == line || l + 1 == line))
    };

    let mut push = |line: usize, rule: &'static str, message: String| {
        if !allowed(line, rule) {
            findings.push(Finding {
                path: path.to_owned(),
                line,
                rule,
                message,
            });
        }
    };

    for (index, text) in stripped_lines.iter().enumerate() {
        let line = index + 1;
        if in_test.get(index).copied().unwrap_or(false) {
            continue;
        }
        if wall_clock_applies(path) {
            for token in ["Instant::now", "SystemTime"] {
                if text.contains(token) {
                    push(
                        line,
                        "wall-clock",
                        format!(
                            "`{token}`: simulated time is the only clock results may depend on"
                        ),
                    );
                }
            }
        }
        // No path exemptions here: even crates allowed to read the wall
        // clock (bench, service, the runner's manifest field) must never
        // let it reach a telemetry call site.
        if text.contains("telemetry") {
            for token in ["Instant::now", "SystemTime"] {
                if text.contains(token) {
                    push(
                        line,
                        "telemetry-wall-clock",
                        format!(
                            "`{token}` next to a telemetry call site: trace events are \
                             timestamped in simulated cycles, never wall time"
                        ),
                    );
                }
            }
        }
        if default_hasher_applies(path) {
            for token in ["HashMap", "HashSet"] {
                if text.contains(token) {
                    push(
                        line,
                        "default-hasher",
                        format!(
                            "std `{token}` uses a per-process random hasher; iterate a \
                             `BTreeMap`/sorted vec instead, or justify a keyed-only use \
                             with lint:allow"
                        ),
                    );
                }
            }
        }
        if println_applies(path) {
            // `eprintln!` contains `println!`, so match it first and only
            // count a plain `println!` that is not part of it.
            if text.contains("eprintln!") {
                push(
                    line,
                    "println-in-lib",
                    "`eprintln!` in library code: report through return values".to_owned(),
                );
            }
            let plain_println = text
                .match_indices("println!")
                .any(|(at, _)| at == 0 || text.as_bytes()[at - 1] != b'e');
            if plain_println {
                push(
                    line,
                    "println-in-lib",
                    "`println!` in library code: report through return values".to_owned(),
                );
            }
        }
        if service_unwrap_applies(path) {
            for token in [".unwrap()", ".expect("] {
                if text.contains(token) {
                    push(
                        line,
                        "service-unwrap",
                        format!(
                            "`{token}` on the request path: a malformed request must get a \
                             4xx/5xx response, not panic a worker"
                        ),
                    );
                }
            }
        }
    }

    if is_crate_root(path) && !source.contains("#![forbid(unsafe_code)]") {
        findings.push(Finding {
            path: path.to_owned(),
            line: 1,
            rule: "unsafe-header",
            message: "crate root is missing the `#![forbid(unsafe_code)]` header".to_owned(),
        });
    }

    findings
}

/// `wall-clock` exemptions: the bench harness measures throughput, the
/// service deals in socket deadlines, and the runner records wall time in
/// the manifest.
fn wall_clock_applies(path: &str) -> bool {
    !(path.starts_with("crates/bench/")
        || path.starts_with("crates/service/")
        || path == "crates/runner/src/executor.rs")
}

/// `default-hasher` applies to the deterministic simulation crates.
fn default_hasher_applies(path: &str) -> bool {
    [
        "crates/sim-cache/",
        "crates/sim-core/",
        "crates/core/",
        "crates/baselines/",
        "crates/defenses/",
    ]
    .iter()
    .any(|prefix| path.starts_with(prefix))
}

/// `println-in-lib` applies to everything that is not a binary target.
fn println_applies(path: &str) -> bool {
    !path.contains("/bin/")
}

/// `service-unwrap` applies to the request-handling modules only.
fn service_unwrap_applies(path: &str) -> bool {
    matches!(
        path,
        "crates/service/src/server.rs"
            | "crates/service/src/http.rs"
            | "crates/service/src/json.rs"
    )
}

fn is_crate_root(path: &str) -> bool {
    path == "src/lib.rs" || (path.starts_with("crates/") && path.ends_with("/src/lib.rs"))
}

/// The `(line, rule)` pairs suppressed by `// lint:allow(...)` markers,
/// collected from the *raw* source (the marker itself lives in a comment).
fn collect_allows(raw_lines: &[&str]) -> Vec<(usize, String)> {
    let mut allows = Vec::new();
    for (index, text) in raw_lines.iter().enumerate() {
        let Some(start) = text.find("lint:allow(") else {
            continue;
        };
        let inner = &text[start + "lint:allow(".len()..];
        let Some(end) = inner.find(')') else {
            continue;
        };
        for rule in inner[..end].split(',') {
            allows.push((index + 1, rule.trim().to_owned()));
        }
    }
    allows
}

/// Marks the lines covered by `#[cfg(test)]` items (the attribute line
/// through the end of the brace-balanced block, or the terminating `;` for
/// block-less items).
fn test_regions(stripped_lines: &[&str]) -> Vec<bool> {
    let mut in_test = vec![false; stripped_lines.len()];
    let mut i = 0;
    while i < stripped_lines.len() {
        if !stripped_lines[i].contains("#[cfg(test)]") {
            i += 1;
            continue;
        }
        let mut depth: i64 = 0;
        let mut opened = false;
        let mut j = i;
        'mark: while j < stripped_lines.len() {
            in_test[j] = true;
            for byte in stripped_lines[j].bytes() {
                match byte {
                    b'{' => {
                        depth += 1;
                        opened = true;
                    }
                    b'}' => depth -= 1,
                    b';' if !opened => break 'mark,
                    _ => {}
                }
            }
            if opened && depth <= 0 {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
    in_test
}

/// Blanks comments and the contents of string/char literals with spaces
/// (newlines preserved) so token matching never fires inside either.
/// Handles line and nested block comments, escapes, raw strings
/// (`r"…"`/`r#"…"#`), byte strings and char literals vs lifetimes.
fn strip_comments_and_strings(source: &str) -> String {
    let bytes = source.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let blank = |b: u8| if b == b'\n' { b'\n' } else { b' ' };
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        let prev_is_ident = i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_');
        match b {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut depth = 1;
                out.extend([b' ', b' ']);
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        out.extend([b' ', b' ']);
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        out.extend([b' ', b' ']);
                        i += 2;
                    } else {
                        out.push(blank(bytes[i]));
                        i += 1;
                    }
                }
            }
            b'"' => {
                out.push(b'"');
                i += 1;
                while i < bytes.len() {
                    if bytes[i] == b'\\' {
                        out.push(b' ');
                        i += 1;
                        if i < bytes.len() {
                            out.push(blank(bytes[i]));
                            i += 1;
                        }
                    } else if bytes[i] == b'"' {
                        out.push(b'"');
                        i += 1;
                        break;
                    } else {
                        out.push(blank(bytes[i]));
                        i += 1;
                    }
                }
            }
            b'r' if !prev_is_ident => {
                // Possible raw string: r", r#", r##" ...
                let mut j = i + 1;
                let mut hashes = 0;
                while bytes.get(j) == Some(&b'#') {
                    hashes += 1;
                    j += 1;
                }
                if bytes.get(j) == Some(&b'"') {
                    out.resize(out.len() + (j - i + 1), b' ');
                    i = j + 1;
                    // Scan for `"` followed by `hashes` '#'s.
                    while i < bytes.len() {
                        if bytes[i] == b'"'
                            && bytes[i + 1..]
                                .iter()
                                .take(hashes)
                                .filter(|&&b| b == b'#')
                                .count()
                                == hashes
                        {
                            out.resize(out.len() + hashes + 1, b' ');
                            i += 1 + hashes;
                            break;
                        }
                        out.push(blank(bytes[i]));
                        i += 1;
                    }
                } else {
                    out.push(b'r');
                    i += 1;
                }
            }
            b'\'' => {
                if bytes.get(i + 1) == Some(&b'\\') {
                    // Escaped char literal: blank through the closing quote.
                    out.push(b'\'');
                    i += 1;
                    while i < bytes.len() && bytes[i] != b'\'' {
                        out.push(blank(bytes[i]));
                        i += 1;
                    }
                    if i < bytes.len() {
                        out.push(b'\'');
                        i += 1;
                    }
                } else if let Some(close) =
                    (i + 2..(i + 6).min(bytes.len())).find(|&j| bytes[j] == b'\'')
                {
                    // Simple (possibly multi-byte) char literal 'x'.
                    out.push(b'\'');
                    for &inner in &bytes[i + 1..close] {
                        out.push(blank(inner));
                    }
                    out.push(b'\'');
                    i = close + 1;
                } else {
                    // A lifetime.
                    out.push(b'\'');
                    i += 1;
                }
            }
            _ => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    const VIOLATIONS: &str = include_str!("../fixtures/violations.rs");
    const ESCAPED: &str = include_str!("../fixtures/escaped.rs");

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn violations_fixture_trips_every_rule() {
        // Pretend the fixture sits in a crate where every rule applies.
        let findings = lint_source("crates/sim-core/src/lib.rs", VIOLATIONS);
        for rule in [
            "wall-clock",
            "telemetry-wall-clock",
            "default-hasher",
            "println-in-lib",
            "unsafe-header",
        ] {
            assert!(
                findings.iter().any(|f| f.rule == rule),
                "missing {rule}: {findings:?}"
            );
        }
        // The same fixture placed in a service request module also trips the
        // unwrap rule.
        let findings = lint_source("crates/service/src/json.rs", VIOLATIONS);
        assert!(findings.iter().any(|f| f.rule == "service-unwrap"));
    }

    #[test]
    fn escaped_fixture_is_clean_except_unsafe_header() {
        // Every violation carries a lint:allow escape; only the missing
        // crate-root header (not escapable) remains when placed at a root.
        let findings = lint_source("crates/sim-core/src/noise.rs", ESCAPED);
        assert_eq!(findings, Vec::new(), "{findings:?}");
    }

    #[test]
    fn findings_carry_line_numbers_and_render_as_json() {
        let findings = lint_source("crates/sim-core/src/lib.rs", VIOLATIONS);
        let wall = findings.iter().find(|f| f.rule == "wall-clock").unwrap();
        assert!(wall.line > 1);
        let json = wall.to_json();
        assert!(json.starts_with("{\"path\":\"crates/sim-core/src/lib.rs\",\"line\":"));
        assert!(json.contains("\"rule\":\"wall-clock\""));
        assert!(wall.to_string().contains("[wall-clock]"));
    }

    #[test]
    fn comments_strings_and_doc_examples_do_not_trip_rules() {
        let source = "\
//! A doc mentioning HashMap and Instant::now and println!.
// let x: HashMap<u8, u8>; SystemTime::now();
/* block HashMap */
fn f() -> &'static str {
    \"HashMap println! .unwrap() Instant::now\"
}
";
        assert_eq!(lint_source("crates/sim-core/src/a.rs", source), Vec::new());
    }

    #[test]
    fn raw_strings_char_literals_and_lifetimes_are_handled() {
        let source = "\
fn g<'a>(x: &'a str) -> char {
    let _raw = r#\"HashMap \"quoted\" println!\"#;
    let _byte = b'{';
    let _ch = '\\'';
    'x'
}
";
        assert_eq!(lint_source("crates/sim-core/src/b.rs", source), Vec::new());
    }

    #[test]
    fn cfg_test_regions_are_skipped() {
        let source = "\
pub fn ok() {}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    #[test]
    fn t() {
        let _ = HashMap::<u8, u8>::new().len().to_string().parse::<u8>().unwrap();
        println!(\"fine in tests\");
    }
}
";
        assert_eq!(
            lint_source("crates/service/src/json.rs", source),
            Vec::new()
        );
        assert_eq!(lint_source("crates/sim-cache/src/x.rs", source), Vec::new());
    }

    #[test]
    fn blockless_cfg_test_items_do_not_swallow_the_file() {
        let source = "\
#[cfg(test)]
use std::collections::HashMap;

pub fn bad() -> std::collections::HashMap<u8, u8> {
    std::collections::HashMap::new()
}
";
        let findings = lint_source("crates/sim-cache/src/y.rs", source);
        assert!(findings.iter().all(|f| f.rule == "default-hasher"));
        assert_eq!(findings.len(), 2, "{findings:?}");
    }

    #[test]
    fn allow_escape_works_on_same_and_previous_line() {
        let same = "use std::collections::HashMap; // lint:allow(default-hasher) keyed only\n";
        assert_eq!(lint_source("crates/sim-cache/src/z.rs", same), Vec::new());
        let above =
            "// keyed lookups only: lint:allow(default-hasher)\nuse std::collections::HashMap;\n";
        assert_eq!(lint_source("crates/sim-cache/src/z.rs", above), Vec::new());
        let wrong_rule = "// lint:allow(wall-clock)\nuse std::collections::HashMap;\n";
        assert_eq!(
            rules_of(&lint_source("crates/sim-cache/src/z.rs", wrong_rule)),
            vec!["default-hasher"]
        );
    }

    #[test]
    fn rule_scoping_follows_paths() {
        let clock = "fn f() { let _ = std::time::Instant::now(); }\n";
        assert!(!lint_source("crates/runner/src/pool.rs", clock).is_empty());
        assert_eq!(
            lint_source("crates/runner/src/executor.rs", clock),
            Vec::new()
        );
        assert_eq!(
            lint_source("crates/service/src/client.rs", clock),
            Vec::new()
        );
        assert_eq!(
            lint_source("crates/bench/src/bench_sim.rs", clock),
            Vec::new()
        );

        let hasher = "use std::collections::HashSet;\n";
        assert!(!lint_source("crates/defenses/src/lib.rs", hasher)
            .iter()
            .all(|f| f.rule != "default-hasher"));
        assert_eq!(lint_source("crates/runner/src/pool.rs", hasher), Vec::new());

        let print = "fn f() { println!(\"x\"); }\n";
        assert!(!lint_source("crates/analysis/src/table.rs", print).is_empty());
        assert_eq!(
            lint_source("crates/bench/src/bin/repro.rs", print),
            Vec::new()
        );

        let unwrap = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert!(!lint_source("crates/service/src/server.rs", unwrap).is_empty());
        assert_eq!(
            lint_source("crates/service/src/client.rs", unwrap),
            Vec::new()
        );
    }

    #[test]
    fn telemetry_wall_clock_has_no_path_exemptions() {
        let stamp = "fn f() { let _ = telemetry_stamp(Instant::now()); }\n";
        // The wall-clock-exempt crates still trip the telemetry variant…
        assert_eq!(
            rules_of(&lint_source("crates/bench/src/bench_sim.rs", stamp)),
            vec!["telemetry-wall-clock"]
        );
        assert_eq!(
            rules_of(&lint_source("crates/service/src/metrics.rs", stamp)),
            vec!["telemetry-wall-clock"]
        );
        assert_eq!(
            rules_of(&lint_source("crates/runner/src/executor.rs", stamp)),
            vec!["telemetry-wall-clock"]
        );
        // …while a simulation crate trips both clock rules on that line.
        let both = rules_of(&lint_source("crates/sim-core/src/machine.rs", stamp));
        assert!(both.contains(&"wall-clock"), "{both:?}");
        assert!(both.contains(&"telemetry-wall-clock"), "{both:?}");
        // Wall time away from telemetry keeps its existing scoping.
        let clock = "fn f() { let _ = std::time::Instant::now(); }\n";
        assert_eq!(
            lint_source("crates/bench/src/bench_sim.rs", clock),
            Vec::new()
        );
        // Telemetry without wall time is, of course, fine anywhere.
        let pure = "fn f(s: &mut telemetry::TraceSink, at: u64) { s.end(0, \"x\", at); }\n";
        assert_eq!(lint_source("crates/core/src/session.rs", pure), Vec::new());
    }

    #[test]
    fn unsafe_header_rule_checks_crate_roots_only() {
        let no_header = "pub fn f() {}\n";
        assert_eq!(
            rules_of(&lint_source("crates/analysis/src/lib.rs", no_header)),
            vec!["unsafe-header"]
        );
        assert_eq!(
            rules_of(&lint_source("src/lib.rs", no_header)),
            vec!["unsafe-header"]
        );
        assert_eq!(
            lint_source("crates/analysis/src/table.rs", no_header),
            Vec::new()
        );
        let with_header = "#![forbid(unsafe_code)]\npub fn f() {}\n";
        assert_eq!(
            lint_source("crates/analysis/src/lib.rs", with_header),
            Vec::new()
        );
    }

    #[test]
    fn expect_method_calls_do_not_false_positive() {
        // A parser helper *named* consume/expect_err is fine; only the
        // Option/Result combinators trip the rule.
        let source = "\
fn f(p: &mut P) -> Result<(), String> {
    p.consume(b'{')?;
    let _ = r.expect_err(\"nope\");
    Ok(())
}
";
        assert_eq!(
            lint_source("crates/service/src/json.rs", source),
            Vec::new()
        );
    }
}
