//! Minimal, offline stand-in for the `rand` crate (0.8-era API surface).
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the handful of `rand` APIs the simulator actually
//! uses: [`rngs::StdRng`] (an xoshiro256++ generator), the [`Rng`] /
//! [`RngCore`] / [`SeedableRng`] traits, uniform range sampling and
//! Fisher–Yates shuffling via [`seq::SliceRandom`].
//!
//! The statistical requirements here are those of a cache simulator, not of
//! cryptography: determinism under seeding, uniformity good enough for
//! replacement policies and noise models. If the real `rand` crate becomes
//! available, deleting `shims/rand` and pointing the workspace dependency at
//! crates.io is intended to be a drop-in swap.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Low-level source of randomness: everything funnels through `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value whose type implements the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 bits of mantissa give the same resolution the real crate offers.
        let sample = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        sample < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A distribution that can produce values of type `T`.
pub trait Distribution<T> {
    /// Draws one sample from the distribution.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution for a type: uniform over all values for
/// integers and `bool`, uniform over `[0, 1)` for floats.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Uniformly samples a `u64` in `[0, span)` without modulo bias
/// (widening-multiply method).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

/// Types with uniform range sampling; mirrors `rand::distributions::uniform`.
///
/// The single generic [`SampleRange`] impl per range shape (matching the
/// real crate's structure) is what lets type inference unify the range's
/// element type with the `gen_range` result type.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`.
    fn sample_exclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Whole-domain range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_exclusive<R: RngCore + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }

    fn sample_inclusive<R: RngCore + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + unit * (hi - lo)
    }
}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Samples a single value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_exclusive(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Raw seed material (a fixed-size byte array for [`rngs::StdRng`]).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded through SplitMix64 so
    /// that nearby seeds produce unrelated streams.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, s) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic, seedable generator: xoshiro256++.
    ///
    /// Not the ChaCha12 generator the real crate uses, but it shares the
    /// properties the simulator relies on — seed determinism and uniform
    /// 64-bit output — at a fraction of the code.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> StdRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut word = [0u8; 8];
                word.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(word);
            }
            // xoshiro must not start from the all-zero state.
            if s.iter().all(|&w| w == 0) {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            StdRng { s }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{uniform_below, RngCore};

    /// Slice extensions: shuffling and random choice.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chooses one element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

/// Commonly used re-exports, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_whole_u64_domain_inclusive() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut any_high = false;
        for _ in 0..64 {
            if rng.gen_range(0u64..=u64::MAX) > u64::MAX / 2 {
                any_high = true;
            }
        }
        assert!(any_high);
    }

    #[test]
    fn gen_bool_respects_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..1000).any(|_| rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn float_samples_are_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
