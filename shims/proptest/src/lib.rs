//! Minimal, offline stand-in for the `proptest` crate.
//!
//! Supports the subset of the proptest 1.x API the workspace's property
//! tests use: the [`proptest!`] macro (with an optional
//! `#![proptest_config(..)]` header), range and `any::<T>()` strategies,
//! tuples of strategies, [`collection::vec`], [`strategy::Just`],
//! [`prop_oneof!`], `prop_map`, and the `prop_assert*` macros.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports the panic from the raw inputs.
//! * **Deterministic seeding.** Cases are generated from a fixed per-test
//!   seed so CI runs are reproducible; set `PROPTEST_CASES` to scale the
//!   case count up or down without touching code.
//! * `prop_assert!`/`prop_assert_eq!` panic immediately instead of
//!   collecting a failure for the shrinker.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use rand::rngs::StdRng;
pub use rand::{Rng, SeedableRng};

/// Strategy trait and combinators.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating values of type [`Strategy::Value`].
    ///
    /// Object-safe: `prop_oneof!` boxes its arms as
    /// `Box<dyn Strategy<Value = T>>`.
    pub trait Strategy {
        /// The type of the generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        /// Boxes this strategy, erasing its concrete type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy, as produced by [`Strategy::boxed`].
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed strategies; the expansion of
    /// [`crate::prop_oneof!`].
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> std::fmt::Debug for Union<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Union")
                .field("options", &self.options.len())
                .finish()
        }
    }

    impl<T> Union<T> {
        /// Builds a union over the given strategies.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            let index = rng.gen_range(0..self.options.len());
            self.options[index].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A);
        (A, B);
        (A, B, C);
        (A, B, C, D);
        (A, B, C, D, E);
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Types with a canonical "whole domain" strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary_value(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_via_standard {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut StdRng) -> $t {
                    rng.gen::<$t>()
                }
            }
        )*};
    }

    impl_arbitrary_via_standard!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    /// Strategy produced by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T> {
        _marker: core::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The whole-domain strategy for `T` (uniform bits for integers and
    /// `bool`, unit interval for `f64`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: core::marker::PhantomData,
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// Runner configuration.
pub mod test_runner {
    /// Controls how many cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases (before the `PROPTEST_CASES`
        /// environment override).
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }

        /// Effective case count: `PROPTEST_CASES` wins if set and parseable.
        pub fn effective_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(self.cases)
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }
}

/// The glob import every property test starts with.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let cases = $crate::test_runner::ProptestConfig::effective_cases(&config);
            // One deterministic stream per test, derived from the test name
            // so distinct properties do not see correlated inputs.
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for byte in stringify!($name).bytes() {
                seed = (seed ^ byte as u64).wrapping_mul(0x1000_0000_01b3);
            }
            let mut rng = <$crate::StdRng as $crate::SeedableRng>::seed_from_u64(seed);
            for case in 0..cases {
                $(
                    let $arg = $crate::strategy::Strategy::generate(&$strategy, &mut rng);
                )+
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $body
                }));
                if let Err(payload) = result {
                    eprintln!(
                        "proptest case {case}/{cases} failed for `{}` (shim: no shrinking)",
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(Box::new($strategy) as $crate::strategy::BoxedStrategy<_>,)+
        ])
    };
}

/// `assert!` inside a property (panics; the shim does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` inside a property (panics; the shim does not shrink).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` inside a property (panics; the shim does not shrink).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_even() -> impl Strategy<Value = u32> {
        (0u32..50).prop_map(|n| n * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(a in 5u64..10, b in 1usize..=3) {
            prop_assert!((5..10).contains(&a));
            prop_assert!((1..=3).contains(&b));
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(any::<bool>(), 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
        }

        #[test]
        fn oneof_and_map_compose(n in prop_oneof![Just(3u32), small_even()]) {
            let n: u32 = n;
            prop_assert!(n == 3 || n.is_multiple_of(2));
        }

        #[test]
        fn tuples_generate_componentwise((x, y) in (0u8..4, 10i64..20)) {
            prop_assert!(x < 4);
            prop_assert!((10..20).contains(&y));
        }
    }

    #[test]
    fn case_count_env_override_parses() {
        let config = ProptestConfig::with_cases(17);
        assert_eq!(config.cases, 17);
    }
}
