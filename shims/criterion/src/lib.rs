//! Minimal, offline stand-in for the `criterion` benchmark harness.
//!
//! Supports the subset the workspace's benches use: [`Criterion`],
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! `sample_size` / `bench_function` / `bench_with_input` / `finish`,
//! [`BenchmarkId`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Instead of criterion's bootstrapped statistics it times a fixed number of
//! iterations per sample and prints mean ns/iter — enough to compare runs by
//! eye and to keep `cargo bench --no-run` compiling the real bench sources.
//! `CRITERION_SHIM_SAMPLES` overrides the per-benchmark sample count (use
//! `1` in CI smoke jobs).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt;
use std::time::Instant;

/// Re-export of [`std::hint::black_box`] for API compatibility.
pub use std::hint::black_box;

const DEFAULT_SAMPLES: usize = 10;

fn samples_override() -> Option<usize> {
    std::env::var("CRITERION_SHIM_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
}

/// The benchmark harness entry point.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: DEFAULT_SAMPLES,
        }
    }
}

impl Criterion {
    /// Sets the number of samples taken per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, &mut routine);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_owned(),
            sample_size: DEFAULT_SAMPLES,
        }
    }

    /// Prints the closing summary (no-op in the shim).
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a named benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_benchmark(&full, self.sample_size, &mut routine);
        self
    }

    /// Runs a parameterised benchmark; the closure receives the input.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.sample_size, &mut |b: &mut Bencher| {
            routine(b, input)
        });
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Identifies one parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter rendering.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }

    /// An id carrying only a parameter rendering.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Passed to benchmark routines; [`Bencher::iter`] times the closure.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    total_nanos: u128,
}

impl Bencher {
    /// Times `routine`, accumulating into the enclosing sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.total_nanos += start.elapsed().as_nanos();
    }
}

fn run_benchmark<F>(name: &str, sample_size: usize, routine: &mut F)
where
    F: FnMut(&mut Bencher),
{
    let samples = samples_override().unwrap_or(sample_size);
    // Warm-up pass, untimed.
    let mut warmup = Bencher {
        iterations: 1,
        total_nanos: 0,
    };
    routine(&mut warmup);

    let mut total_nanos: u128 = 0;
    let mut total_iters: u64 = 0;
    for _ in 0..samples {
        let mut bencher = Bencher {
            iterations: 1,
            total_nanos: 0,
        };
        routine(&mut bencher);
        total_nanos += bencher.total_nanos;
        total_iters += bencher.iterations;
    }
    if total_iters > 0 {
        let mean = total_nanos / total_iters as u128;
        println!("bench: {name:<60} {mean:>12} ns/iter ({total_iters} iters)");
    }
}

/// Collects benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("grouped");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("param", 3), &3u32, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.bench_function("plain", |b| b.iter(|| black_box(0u8)));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_groups_without_panicking() {
        benches();
    }

    #[test]
    fn benchmark_id_renders_function_and_parameter() {
        assert_eq!(BenchmarkId::new("f", 7).to_string(), "f/7");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
