//! Side-channel demonstration: recovering a victim's secret bits from its
//! secret-dependent memory accesses (Section IX / Figure 9 of the paper).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example side_channel_attack
//! ```
//!
//! Three scenarios are exercised:
//!
//! 1. the victim *stores* to one of two lines depending on the secret
//!    (Figure 9a) — the attacker probes the dirty state of set *m*;
//! 2. the victim only *loads* (a read-only key, Figure 9b) — the attacker
//!    pre-fills set *m* with dirty lines and watches one disappear;
//! 3. the attacker times the victim itself after priming both sets.

use dirty_cache_repro::wb_channel::side_channel::{run_scenario, Scenario, SideChannelConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SideChannelConfig {
        trials: 400,
        ..SideChannelConfig::default()
    };
    println!(
        "recovering {} random secret bits per scenario\n",
        config.trials
    );
    for scenario in Scenario::ALL {
        let result = run_scenario(&config, scenario)?;
        println!(
            "{:<45} accuracy {:>6.1}%  (threshold {:.0} cycles)",
            result.scenario.label(),
            result.accuracy * 100.0,
            result.threshold
        );
    }
    println!(
        "\nScenario 1 works even when both victim lines live in the same cache set,\n\
         where Prime+Probe and the LRU channel cannot distinguish them (Sec. IX)."
    );
    Ok(())
}
