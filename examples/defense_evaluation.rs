//! Defense evaluation: how much of the WB channel survives each mitigation
//! of Section VIII.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example defense_evaluation
//! ```
//!
//! For every defense the harness measures the receiver's accuracy at
//! distinguishing a clean target set from one holding three dirty lines, and
//! compares the verdict against the paper's expectation.

use dirty_cache_repro::defenses::{evaluate_all, EvaluationConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = EvaluationConfig {
        samples: 200,
        ..EvaluationConfig::default()
    };
    let results = evaluate_all(&config)?;
    println!(
        "{:<36} {:>9} {:>9} {:>9}  {:<10} paper expectation",
        "defense", "clean(cy)", "dirty(cy)", "accuracy", "mitigated?"
    );
    for r in results {
        println!(
            "{:<36} {:>9.0} {:>9.0} {:>8.1}%  {:<10} {}",
            r.label,
            r.mean_clean,
            r.mean_dirty,
            r.accuracy * 100.0,
            if r.mitigated { "yes" } else { "no" },
            r.paper_expectation
        );
    }
    Ok(())
}
