//! Quickstart: send a secret message over the WB covert channel.
//!
//! Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! This sets up the paper's environment — two processes without shared
//! memory, pinned to the two hyper-threads of a simulated Xeon E5-2650 —
//! and transmits a short ASCII message through the dirty-state timing channel
//! at 400 kbps (binary symbols, `Ts = Tr = 5500` cycles).  The transmission
//! runs through the session layer: the whole frame is compiled into
//! per-domain trace programs and executed by the batched session executor.

use analysis::edit_distance::{bits_to_bytes, bytes_to_bits};
use dirty_cache_repro::wb_channel::channel::ChannelConfig;
use dirty_cache_repro::wb_channel::encoding::SymbolEncoding;
use dirty_cache_repro::wb_channel::session::ChannelSession;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let secret = b"dirty bits leak!";
    println!(
        "sender wants to exfiltrate: {:?}",
        String::from_utf8_lossy(secret)
    );

    // One dirty line per '1' bit: the stealthiest configuration.
    let config = ChannelConfig::builder()
        .encoding(SymbolEncoding::binary(1)?)
        .period_cycles(5_500) // 400 kbps at 2.2 GHz
        .seed(42)
        .build()?;
    let mut session = ChannelSession::new(config)?;
    println!(
        "calibrated threshold: {:.0} cycles (clean sweep vs one dirty line)",
        session.decoder().binary_threshold().unwrap_or(f64::NAN)
    );

    let payload = bytes_to_bits(secret);
    let report = session.transmit_bits(&payload)?;

    // Strip the 16-bit preamble before turning the payload back into bytes.
    let received_payload: Vec<bool> = report
        .received_bits
        .iter()
        .skip(16)
        .copied()
        .take(payload.len())
        .collect();
    let recovered = bits_to_bytes(&received_payload);

    println!("transmission rate : {:.0} kbps", report.rate_kbps);
    println!(
        "bit error rate    : {:.2}%",
        report.bit_error_rate() * 100.0
    );
    println!("edit distance     : {}", report.edit_distance);
    println!(
        "receiver recovered: {:?}",
        String::from_utf8_lossy(&recovered)
    );
    println!(
        "latency samples (first 16): {:?}",
        &report.latencies[..16.min(report.latencies.len())]
    );
    let usage = session.sim_usage();
    println!(
        "simulated work     : {} accesses, {} cycles over {} frame(s)",
        usage.accesses(),
        usage.cycles(),
        usage.frames
    );
    Ok(())
}
