//! Bandwidth / error-rate sweep (the shape of the paper's Figure 6).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example covert_channel_sweep
//! ```
//!
//! Sweeps the sending period over the paper's values for binary symbols with
//! d = 1 and d = 8 and for the two-bit encoding, printing rate vs mean bit
//! error rate.  The crossover the paper reports — larger `d` tolerates higher
//! rates, and two-bit symbols roughly double the peak bandwidth — shows up in
//! the printed series.

use dirty_cache_repro::wb_channel::capacity::PAPER_PERIODS;
use dirty_cache_repro::wb_channel::channel::ChannelConfig;
use dirty_cache_repro::wb_channel::encoding::SymbolEncoding;
use dirty_cache_repro::wb_channel::session::ChannelSession;

fn sweep(
    label: &str,
    encoding: SymbolEncoding,
    frames: usize,
) -> Result<(), Box<dyn std::error::Error>> {
    println!("\n== {label} ==");
    println!(
        "{:>12} {:>12} {:>10}",
        "Ts (cycles)", "rate (kbps)", "mean BER"
    );
    for &period in PAPER_PERIODS.iter().rev() {
        let config = ChannelConfig::builder()
            .encoding(encoding.clone())
            .period_cycles(period)
            .seed(7 ^ period)
            .build()?;
        let mut session = ChannelSession::new(config)?;
        let report = session.evaluate(frames, 128 * encoding.bits_per_symbol())?;
        println!(
            "{:>12} {:>12.0} {:>9.2}%",
            period,
            report.rate_kbps,
            report.mean_bit_error_rate * 100.0
        );
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let frames = 4;
    sweep("binary symbols, d = 1", SymbolEncoding::binary(1)?, frames)?;
    sweep("binary symbols, d = 8", SymbolEncoding::binary(8)?, frames)?;
    sweep(
        "two-bit symbols, d in {0, 3, 5, 8}",
        SymbolEncoding::paper_two_bit(),
        frames,
    )?;
    println!("\n(the paper reports <5% BER up to ~1375 kbps for every d, ~4.5% at 2700 kbps for d=8,\n and ~3.5% at 4400 kbps with two-bit symbols)");
    Ok(())
}
